// Package profile implements Mario's lightweight profiling (§5.2): short
// probe runs on the (emulated) cluster collect per-instruction timings and
// peak memory, and linear regressions y = a·n + b over the number of
// transformer blocks n turn them into the per-stage estimators the simulator
// consumes. The bias b captures the framework overhead.
//
// The paper's guidelines are followed directly:
//
//  1. the transformer block is the basic profiling unit (the probe sweep
//     varies blocks per stage);
//  2. samples are read from the (D-1)-th device of a 1F1B probe pipeline,
//     which holds several blocks and has headroom;
//  3. memory is split into a static part (framework + weights) and a dynamic
//     part (activations per block), separated by the regression intercept;
//  4. only ten training iterations are collected per probe.
package profile

import (
	"fmt"
	"sort"
	"sync"

	"mario/internal/cluster"
	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/regress"
	"mario/internal/scheme"
)

// MachineSpec describes the hidden imperfections of the hardware being
// profiled; the profiler observes them only through measurements.
type MachineSpec struct {
	Noise         float64
	ExtraOverhead float64
	MemSlack      float64
	Hetero        float64
	Seed          uint64
}

// DefaultMachine models a realistic software stack: ±4% jitter, 180 µs of
// unmodeled per-instruction overhead, 6% allocator slack, and ±5% static
// per-device speed variation the single-device profiler cannot see.
var DefaultMachine = MachineSpec{Noise: 0.04, ExtraOverhead: 180e-6, MemSlack: 1.06, Hetero: 0.05, Seed: 20250301}

// Profiler runs probes for one (model, hardware) pair and builds estimators
// for arbitrary pipeline shapes. It is safe for concurrent use.
type Profiler struct {
	Model cost.ModelConfig
	HW    cost.Hardware
	Spec  MachineSpec
	// Devices is the probe pipeline depth; 0 means 4.
	Devices int
	// Iters is the number of probe training iterations; 0 means the
	// paper's 10.
	Iters int

	mu    sync.Mutex
	cache map[profileKey]*fit
}

type profileKey struct {
	mbs, tp int
}

// fit is the outcome of one probe sweep.
type fit struct {
	fw, bw regress.Linear // seconds vs blocks per stage
	// stage-boundary extras measured on the probe's first/last stages.
	firstExtra, lastExtra float64
	actPerBlock           float64 // bytes per block per micro-batch
	frameworkMem          float64
	commAct, commGrad     float64 // measured transfer seconds
	optTime               float64
	overhead              float64 // regression bias b (per-instruction)
}

// NewMachine builds the emulated hardware for a concrete training job: the
// analytic cost model is the physical truth, and the spec's imperfections
// are layered on top.
func (p *Profiler) NewMachine(model cost.ModelConfig, stages, mbs, tp int) (*cluster.Machine, error) {
	truth, err := cost.Analytic(cost.AnalyticConfig{Model: model, HW: p.HW, Stages: stages, MicroBatch: mbs, TP: tp})
	if err != nil {
		return nil, err
	}
	return &cluster.Machine{
		Truth:         truth,
		Noise:         p.Spec.Noise,
		ExtraOverhead: p.Spec.ExtraOverhead,
		MemSlack:      p.Spec.MemSlack,
		Hetero:        p.Spec.Hetero,
		Seed:          p.Spec.Seed,
	}, nil
}

// NewMachinePartitioned builds the emulated hardware for a training job with
// an explicit layer→stage partition and declared per-rank speed factors: the
// analytic truth follows the partition, and the machine applies the speed
// factors to compute durations itself (the truth estimator carries no
// DeviceSpeed — declared heterogeneity is a property of the hardware, not of
// the cost model the planner feeds the simulator). A nil partition keeps the
// even split; nil speeds mean a homogeneous cluster.
func (p *Profiler) NewMachinePartitioned(model cost.ModelConfig, stages, mbs, tp int, part []int, speeds []float64) (*cluster.Machine, error) {
	truth, err := cost.Analytic(cost.AnalyticConfig{Model: model, HW: p.HW, Stages: stages, MicroBatch: mbs, TP: tp, Partition: part})
	if err != nil {
		return nil, err
	}
	return &cluster.Machine{
		Truth:         truth,
		Noise:         p.Spec.Noise,
		ExtraOverhead: p.Spec.ExtraOverhead,
		MemSlack:      p.Spec.MemSlack,
		Hetero:        p.Spec.Hetero,
		Seed:          p.Spec.Seed,
		SpeedFactors:  append([]float64(nil), speeds...),
	}, nil
}

// EstimatorFor returns a profiled estimator for a pipeline with the given
// stage count, micro-batch size and TP degree, running the probe sweep on
// first use (cached per (mbs, tp)).
func (p *Profiler) EstimatorFor(stages, mbs, tp int) (*cost.Estimator, error) {
	if tp <= 0 {
		tp = 1
	}
	if p.Model.Layers < stages {
		return nil, fmt.Errorf("profile: %d layers cannot fill %d stages", p.Model.Layers, stages)
	}
	f, err := p.fitFor(mbs, tp)
	if err != nil {
		return nil, err
	}
	return p.assemble(f, cost.Partition(p.Model.Layers, stages), mbs, tp)
}

// EstimatorForPartition returns a profiled estimator whose stage costs follow
// an explicit layer→stage partition instead of the even split: part[s]
// transformer blocks on stage s. The uniform partition yields an estimator
// bit-identical to EstimatorFor's.
func (p *Profiler) EstimatorForPartition(part []int, mbs, tp int) (*cost.Estimator, error) {
	if tp <= 0 {
		tp = 1
	}
	if err := cost.ValidatePartition(part, p.Model.Layers, len(part)); err != nil {
		return nil, err
	}
	f, err := p.fitFor(mbs, tp)
	if err != nil {
		return nil, err
	}
	return p.assemble(f, part, mbs, tp)
}

func (p *Profiler) fitFor(mbs, tp int) (*fit, error) {
	key := profileKey{mbs: mbs, tp: tp}
	p.mu.Lock()
	if p.cache == nil {
		p.cache = make(map[profileKey]*fit)
	}
	if f, ok := p.cache[key]; ok {
		p.mu.Unlock()
		return f, nil
	}
	p.mu.Unlock()

	f, err := p.probe(mbs, tp)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.cache[key] = f
	p.mu.Unlock()
	return f, nil
}

// probe runs 1F1B probe jobs with 1..4 transformer blocks per stage and fits
// the regressions.
func (p *Profiler) probe(mbs, tp int) (*fit, error) {
	d := p.Devices
	if d <= 0 {
		d = 4
	}
	iters := p.Iters
	if iters <= 0 {
		iters = 10
	}
	maxBlocks := p.Model.Layers / d
	if maxBlocks < 1 {
		return nil, fmt.Errorf("profile: model %s has fewer layers (%d) than probe devices (%d)", p.Model.Name, p.Model.Layers, d)
	}
	var ks []int
	for k := 1; k <= maxBlocks && len(ks) < 4; k++ {
		ks = append(ks, k)
	}
	if len(ks) < 2 {
		// A single feasible block count cannot anchor a regression; probe
		// with a shallower pipeline instead.
		return (&Profiler{Model: p.Model, HW: p.HW, Spec: p.Spec, Devices: 2, Iters: iters}).probe(mbs, tp)
	}

	probeDev := d - 2 // the paper's "(D-1)-th device", 0-indexed
	if probeDev < 0 {
		probeDev = 0
	}
	onFly := float64(d - probeDev) // on-the-fly micros at peak on that device

	var xs, fwYs, bwYs, memYs []float64
	var commActs, commGrads, optTimes []float64
	var lastFirstExtra, lastLastExtra float64
	for _, k := range ks {
		model := p.Model.WithLayers(k * d)
		mach, err := p.NewMachine(model, d, mbs, tp)
		if err != nil {
			return nil, err
		}
		sched, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: d, Micros: 2 * d})
		if err != nil {
			return nil, err
		}
		rep, err := mach.Run(sched, iters)
		if err != nil {
			return nil, fmt.Errorf("profile: probe k=%d: %w", k, err)
		}
		devSamples := rep.DeviceDurations[probeDev]
		fw := regress.Mean(devSamples[cluster.SampleKey{Kind: pipeline.Forward, Stage: probeDev}])
		bw := regress.Mean(devSamples[cluster.SampleKey{Kind: pipeline.Backward, Stage: probeDev}])
		xs = append(xs, float64(k))
		fwYs = append(fwYs, fw)
		bwYs = append(bwYs, bw)

		// Dynamic memory: subtract the analytically known weight bytes of
		// the probe device (middle stage: blocks only, no embedding).
		weights := model.ParamsPerLayer() * float64(k) / float64(tp) * cost.BytesPerParamTraining
		memYs = append(memYs, rep.PeakMem[probeDev]-weights)

		commActs = append(commActs, regress.Mean(rep.Durations[cluster.SampleKey{Kind: pipeline.SendAct, Stage: probeDev}]))
		commGrads = append(commGrads, regress.Mean(rep.Durations[cluster.SampleKey{Kind: pipeline.SendGrad, Stage: probeDev}]))
		optTimes = append(optTimes, regress.Mean(rep.Durations[cluster.SampleKey{Kind: pipeline.OptimizerStep, Stage: -1}]))

		// First/last stage extras (embedding, LM head) relative to a plain
		// block stage, measured at the largest sweep point.
		fw0 := regress.Mean(rep.DeviceDurations[0][cluster.SampleKey{Kind: pipeline.Forward, Stage: 0}])
		fwL := regress.Mean(rep.DeviceDurations[d-1][cluster.SampleKey{Kind: pipeline.Forward, Stage: d - 1}])
		lastFirstExtra = fw0 - fw
		lastLastExtra = fwL - fw
	}

	fwLine, err := regress.Fit(xs, fwYs)
	if err != nil {
		return nil, fmt.Errorf("profile: forward fit: %w", err)
	}
	bwLine, err := regress.Fit(xs, bwYs)
	if err != nil {
		return nil, fmt.Errorf("profile: backward fit: %w", err)
	}
	memLine, err := regress.Fit(xs, memYs)
	if err != nil {
		return nil, fmt.Errorf("profile: memory fit: %w", err)
	}

	f := &fit{
		fw:           fwLine,
		bw:           bwLine,
		firstExtra:   max0(lastFirstExtra),
		lastExtra:    max0(lastLastExtra),
		actPerBlock:  memLine.A / onFly,
		frameworkMem: max0(memLine.B),
		commAct:      regress.Mean(commActs),
		commGrad:     regress.Mean(commGrads),
		overhead:     max0(fwLine.B),
		optTime:      max0(regress.Mean(optTimes) - max0(fwLine.B)),
	}
	return f, nil
}

// assemble builds a cost.Estimator for the requested pipeline shape from the
// fitted lines, placing blocks[s] transformer blocks on stage s.
func (p *Profiler) assemble(f *fit, blocks []int, mbs, tp int) (*cost.Estimator, error) {
	stages := len(blocks)
	ftp := float64(tp)
	s, b, h := float64(p.Model.SeqLen), float64(mbs), float64(p.Model.Hidden)
	p2pBytes := s * b * h * cost.BytesPerActElem / ftp

	ovh := f.overhead
	e := &cost.Estimator{
		Stages:         stages,
		MicroBatch:     mbs,
		TP:             tp,
		FwTime:         make([]float64, stages),
		BwTime:         make([]float64, stages),
		RcTime:         make([]float64, stages),
		ActFull:        make([]float64, stages),
		ActStash:       make([]float64, stages),
		ActWork:        make([]float64, stages),
		WeightBytes:    make([]float64, stages),
		ActP2PBytes:    p2pBytes,
		GradP2PBytes:   p2pBytes,
		LinkLatency:    0,
		LinkBandwidth:  bandwidthFrom(p2pBytes, f.commAct),
		LaunchOverhead: ovh,
		FrameworkMem:   f.frameworkMem,
		OptTime:        f.optTime,
		BwSplitRatio:   0.5,
	}
	for st, nl := range blocks {
		fl := float64(nl)
		fw := max0(f.fw.Predict(fl) - ovh)
		bwBias := max0(f.bw.B)
		bwT := max0(f.bw.Predict(fl) - bwBias)
		if st == 0 {
			fw += f.firstExtra
			bwT += f.firstExtra * (bwT / max64(fw, 1e-12))
		}
		if st == stages-1 {
			fw += f.lastExtra
			bwT += f.lastExtra * 1.8
		}
		e.FwTime[st] = fw
		e.BwTime[st] = bwT
		e.RcTime[st] = fw
		e.ActFull[st] = f.actPerBlock * fl
		e.ActWork[st] = f.actPerBlock
		e.ActStash[st] = p2pBytes
		extra := 0.0
		if st == 0 || st == stages-1 {
			extra = p.Model.EmbeddingParams()
		}
		e.WeightBytes[st] = (p.Model.ParamsPerLayer()*fl + extra) / ftp * cost.BytesPerParamTraining
	}
	return e, nil
}

func bandwidthFrom(bytes, seconds float64) float64 {
	if seconds <= 0 {
		return 1e18 // effectively free links
	}
	return bytes / seconds
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SortedKeys returns the sample keys of a report in deterministic order;
// used by tooling that prints profiling tables.
func SortedKeys(m map[cluster.SampleKey][]float64) []cluster.SampleKey {
	keys := make([]cluster.SampleKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kind != keys[j].Kind {
			return keys[i].Kind < keys[j].Kind
		}
		return keys[i].Stage < keys[j].Stage
	})
	return keys
}
