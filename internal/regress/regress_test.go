package regress

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	l, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.A-3) > 1e-12 || math.Abs(l.B-7) > 1e-12 {
		t.Errorf("fit = %+v, want a=3 b=7", l)
	}
	if math.Abs(l.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", l.R2)
	}
	if got := l.Predict(10); math.Abs(got-37) > 1e-12 {
		t.Errorf("Predict(10) = %v, want 37", got)
	}
}

func TestFitNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	l, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.A-2) > 0.1 || math.Abs(l.B) > 0.3 {
		t.Errorf("fit = %+v, want roughly a=2 b=0", l)
	}
	if l.R2 < 0.99 {
		t.Errorf("R2 = %v too low for near-linear data", l.R2)
	}
}

func TestFitDegenerate(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x-variance accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestFitRecoversLineProperty: fitting any non-degenerate exact line
// recovers its parameters.
func TestFitRecoversLineProperty(t *testing.T) {
	f := func(a, b float64, n uint8) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		m := int(n)%8 + 2
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = a*xs[i] + b
		}
		l, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		return math.Abs(l.A-a) < 1e-6*scale && math.Abs(l.B-b) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
}

func TestMAPE(t *testing.T) {
	truth := []float64{10, 20, 0, 40}
	pred := []float64{11, 18, 5, 44}
	// errors: 10%, 10%, skipped, 10% → 10%
	if got := MAPE(truth, pred); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.1", got)
	}
	if got := MAPE([]float64{0}, []float64{1}); got != 0 {
		t.Errorf("all-zero-truth MAPE = %v", got)
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := KendallTau(a, a); got != 1 {
		t.Errorf("identical order tau = %v", got)
	}
	rev := []float64{4, 3, 2, 1}
	if got := KendallTau(a, rev); got != -1 {
		t.Errorf("reversed order tau = %v", got)
	}
	if got := KendallTau([]float64{1}, []float64{5}); got != 1 {
		t.Errorf("singleton tau = %v", got)
	}
}

func TestPanicsOnMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"MAPE":       func() { MAPE([]float64{1}, []float64{1, 2}) },
		"KendallTau": func() { KendallTau([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
