// Package regress implements the least-squares linear regression
// y = a·n + b used by Mario's lightweight profiling (§5.2): execution time,
// static/dynamic memory and p2p time are all modelled as linear functions of
// the number of transformer blocks (or micro-batches), with the bias b
// capturing the framework overhead.
package regress

import (
	"errors"
	"math"
)

// ErrDegenerate is returned when a fit is impossible (fewer than two points
// or zero variance in x).
var ErrDegenerate = errors.New("regress: degenerate input")

// Linear is a fitted line y = A·x + B.
type Linear struct {
	A, B float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Predict evaluates the line at x.
func (l Linear) Predict(x float64) float64 { return l.A*x + l.B }

// Fit performs ordinary least squares on the paired samples.
func Fit(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Linear{}, ErrDegenerate
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, ErrDegenerate
	}
	a := sxy / sxx
	b := my - a*mx
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range xs {
			r := ys[i] - (a*xs[i] + b)
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return Linear{}, ErrDegenerate
	}
	return Linear{A: a, B: b, R2: r2}, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MAPE returns the mean absolute percentage error of predictions against
// ground truth, as used by the simulator-accuracy evaluation (§6.6). Pairs
// with zero truth are skipped.
func MAPE(truth, pred []float64) float64 {
	if len(truth) != len(pred) {
		panic("regress: MAPE length mismatch")
	}
	var sum float64
	n := 0
	for i := range truth {
		if truth[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-truth[i]) / math.Abs(truth[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// KendallTau returns the Kendall rank-correlation coefficient between two
// score vectors; 1 means the partial order is perfectly preserved. Used to
// verify the simulator "preserves the partial order" of configurations
// (§5.3, Fig. 10).
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("regress: KendallTau length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	conc, disc := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pa, pb := a[i]-a[j], b[i]-b[j]
			switch {
			case pa*pb > 0:
				conc++
			case pa*pb < 0:
				disc++
			}
		}
	}
	total := n * (n - 1) / 2
	if total == 0 {
		return 1
	}
	return float64(conc-disc) / float64(total)
}
