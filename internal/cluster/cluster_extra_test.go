package cluster

import (
	"math"
	"testing"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
)

// TestHeteroSlowsPipeline: static per-device speed variation stretches the
// measured makespan relative to the homogeneous machine (the pipeline beats
// to the slowest drum) and remains deterministic per seed.
func TestHeteroSlowsPipeline(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 8, Micros: 32})
	e := cost.Uniform(8, 1, 2, 0.25)
	homo := mustRun(t, &Machine{Truth: e, Seed: 5}, s, 1)
	// Average over a few seeds: individual draws may make the bottleneck
	// stage faster, but the expected makespan grows with the max factor.
	slower := 0
	const seeds = 5
	for seed := uint64(0); seed < seeds; seed++ {
		het := mustRun(t, &Machine{Truth: e, Hetero: 0.2, Seed: seed}, s, 1)
		if het.Total > homo.Total {
			slower++
		}
	}
	if slower < seeds-1 {
		t.Errorf("heterogeneity slowed only %d/%d seeds", slower, seeds)
	}
	a := mustRun(t, &Machine{Truth: e, Hetero: 0.2, Seed: 9}, s, 1)
	b := mustRun(t, &Machine{Truth: e, Hetero: 0.2, Seed: 9}, s, 1)
	if a.Total != b.Total {
		t.Error("hetero machine not deterministic per seed")
	}
}

// TestClusterRunsSplitBackward: ZB-H1 schedules execute on the emulator and
// beat the whole-backward baseline, matching the simulator's verdict.
func TestClusterRunsSplitBackward(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	e := cost.Uniform(4, 1, 2, 0.25)
	split, predicted, err := graph.SplitBackward(s, graph.Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	base := mustRun(t, machine(e), s, 1)
	got := mustRun(t, machine(e), split, 1)
	if got.Total >= base.Total {
		t.Errorf("split backward on cluster: %v not below baseline %v", got.Total, base.Total)
	}
	if math.Abs(got.Total-predicted.Total) > 1e-9 {
		t.Errorf("cluster %v and simulator %v disagree on the split schedule", got.Total, predicted.Total)
	}
}

// TestClusterRunsOptimizedCheckpointSchedule: the full Mario schedule (with
// preposed forwards and buffered sends) executes on real channels without
// mismatch or deadlock and matches the simulator exactly in the noiseless
// machine.
func TestClusterRunsOptimizedCheckpointSchedule(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	opt, predicted, err := graph.Optimize(s, graph.Options{Estimator: e})
	if err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, machine(e), opt, 1)
	if math.Abs(got.Total-predicted.Total) > 1e-9 {
		t.Errorf("cluster %v and simulator %v disagree on the optimized schedule", got.Total, predicted.Total)
	}
}

// TestSmallLinkBuffer: a link buffer of one message still completes
// fill-drain and 1F1B pipelines (sends may block, but consistently ordered
// receives drain them).
func TestSmallLinkBuffer(t *testing.T) {
	for _, sch := range []pipeline.Scheme{pipeline.SchemeGPipe, pipeline.Scheme1F1B} {
		s := buildSched(t, sch, scheme.Config{Devices: 4, Micros: 8})
		e := cost.Uniform(4, 1, 2, 0.25)
		m := &Machine{Truth: e, Seed: 2, LinkBuffer: 1}
		if _, err := m.Run(s, 1); err != nil {
			t.Errorf("%s with buffer 1: %v", sch, err)
		}
	}
}
