package cluster

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mario/internal/cost"
	"mario/internal/fault"
	"mario/internal/obs"
	"mario/internal/pipeline"
	"mario/internal/scheme"
)

// TestEmptyFaultPlanIsFree: a nil or empty plan must not change the report.
func TestEmptyFaultPlanIsFree(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	healthy := mustRun(t, &Machine{Truth: e, Noise: 0.05, Seed: 7}, s, 2)
	empty := mustRun(t, &Machine{Truth: e, Noise: 0.05, Seed: 7, Faults: &fault.Plan{Name: "noop"}}, s, 2)
	healthy.WatchdogResets, empty.WatchdogResets = 0, 0
	if !reflect.DeepEqual(healthy, empty) {
		t.Errorf("empty fault plan changed the report:\nhealthy: %+v\nempty:   %+v", healthy, empty)
	}
}

// TestSlowdownStretchesRun: a persistent straggler makes the run measurably
// slower and shows up in the fault counters and the recorded events.
func TestSlowdownStretchesRun(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	base := mustRun(t, &Machine{Truth: e, Seed: 7}, s, 1)
	rec := &obs.Recorder{}
	m := &Machine{Truth: e, Seed: 7, Sink: rec,
		Faults: &fault.Plan{Slowdowns: []fault.Slowdown{{Device: 1, Factor: 2}}}}
	slow := mustRun(t, m, s, 1)
	if slow.Total <= base.Total {
		t.Errorf("straggler did not slow the run: %v vs %v", slow.Total, base.Total)
	}
	if slow.FaultSlowed == 0 {
		t.Error("FaultSlowed counter is zero under a persistent slowdown")
	}
	marked := 0
	for _, ev := range rec.Events {
		if ev.FaultSlow != 0 {
			if ev.Device != 1 {
				t.Errorf("slowdown annotation on device %d, plan targets device 1", ev.Device)
			}
			if ev.FaultSlow != 2 {
				t.Errorf("event slow factor %v, want 2", ev.FaultSlow)
			}
			marked++
		}
	}
	if marked != slow.FaultSlowed {
		t.Errorf("%d annotated events vs FaultSlowed %d", marked, slow.FaultSlowed)
	}
}

// TestStallAddsVirtualTime: a virtual stall window extends the makespan by at
// least its duration and is accounted in FaultStall.
func TestStallAddsVirtualTime(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	e := cost.Uniform(4, 1, 2, 0.25)
	base := mustRun(t, &Machine{Truth: e, Seed: 3}, s, 1)
	const stall = 5.0
	m := &Machine{Truth: e, Seed: 3,
		Faults: &fault.Plan{Stalls: []fault.Stall{{Device: 0, At: 0, Duration: stall}}}}
	rep := mustRun(t, m, s, 1)
	if rep.FaultStall != stall {
		t.Errorf("FaultStall = %v, want %v", rep.FaultStall, stall)
	}
	if rep.Total < base.Total+stall*0.9 {
		t.Errorf("stall did not extend the makespan: %v vs healthy %v", rep.Total, base.Total)
	}
}

// TestInjectedStallIsNotADeadlock: a wall-clock stall hold longer than the
// watchdog interval must not trip ErrDeadlock — the watchdog re-arms and
// counts a StallReset instead.
func TestInjectedStallIsNotADeadlock(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 2, Micros: 2})
	e := cost.Uniform(2, 1, 2, 0.25)
	m := &Machine{Truth: e, Seed: 1, Watchdog: 50 * time.Millisecond,
		Faults: &fault.Plan{Stalls: []fault.Stall{
			{Device: 0, At: 0, Duration: 0.01, Wall: 180 * time.Millisecond},
		}}}
	rep, err := m.Run(s, 1)
	if err != nil {
		t.Fatalf("injected stall tripped the watchdog: %v", err)
	}
	if rep.StallResets < 1 {
		t.Errorf("StallResets = %d, want ≥ 1 (watchdog fired during the %v hold)", rep.StallResets, 180*time.Millisecond)
	}
}

// TestRealDeadlockStillCaughtUnderFaults: with an active fault plan attached
// but no device actually stalled, a genuine cyclic wait must still be
// classified as a deadlock.
func TestRealDeadlockStillCaughtUnderFaults(t *testing.T) {
	pl := pipeline.NewLinearPlacement(2)
	s := &pipeline.Schedule{
		Scheme:    pipeline.Scheme1F1B,
		Placement: pl,
		Micros:    1,
		Lists: [][]pipeline.Instr{
			{
				{Kind: pipeline.RecvGrad, Micro: 0, Stage: 0},
				{Kind: pipeline.Forward, Micro: 0, Stage: 0},
				{Kind: pipeline.SendAct, Micro: 0, Stage: 0},
				{Kind: pipeline.Backward, Micro: 0, Stage: 0},
			},
			{
				{Kind: pipeline.RecvAct, Micro: 0, Stage: 1},
				{Kind: pipeline.Forward, Micro: 0, Stage: 1},
				{Kind: pipeline.Backward, Micro: 0, Stage: 1},
				{Kind: pipeline.SendGrad, Micro: 0, Stage: 1},
			},
		},
	}
	e := cost.Uniform(2, 1, 2, 0.25)
	m := &Machine{Truth: e, Seed: 1, Watchdog: 200 * time.Millisecond,
		Faults: &fault.Plan{Slowdowns: []fault.Slowdown{{Device: 0, Factor: 1.5}}}}
	_, err := m.Run(s, 1)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

// TestLinkFailurePropagates: exhausting the retry budget surfaces
// fault.ErrLinkFailure as the run error.
func TestLinkFailurePropagates(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 2, Micros: 2})
	e := cost.Uniform(2, 1, 2, 0.25)
	m := &Machine{Truth: e, Seed: 1, Watchdog: time.Second,
		Faults: &fault.Plan{Seed: 1, MaxRetries: 1,
			Links: []fault.LinkFault{{From: -1, To: -1, DropProb: 0.999999999}}}}
	_, err := m.Run(s, 1)
	if !errors.Is(err, fault.ErrLinkFailure) {
		t.Fatalf("err = %v, want fault.ErrLinkFailure", err)
	}
}

// faultedTrace runs a faulted, observed run and returns the JSONL bytes of
// its event stream.
func faultedTrace(t *testing.T, seed uint64) []byte {
	t.Helper()
	s := buildSched(t, pipeline.SchemeChimera, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(s.NumStages(), 1, 2, 0.25)
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	m := &Machine{Truth: e, Noise: 0.05, Seed: 11, Sink: sink,
		Faults: &fault.Plan{
			Seed:      seed,
			Slowdowns: []fault.Slowdown{{Device: 2, Factor: 1.4, Start: 0, End: 0.5}},
			Links:     []fault.LinkFault{{From: -1, To: -1, Channel: fault.ChannelAct, DropProb: 0.05, ExtraLatency: 100e-6}},
			Stalls:    []fault.Stall{{Device: 0, At: 0.01, Duration: 0.02}},
		}}
	if _, err := m.Run(s, 2); err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultedTraceDeterministic: identical seed + plan ⇒ byte-identical
// measured JSONL traces, including across GOMAXPROCS settings (the drop
// decisions must not depend on goroutine interleaving).
func TestFaultedTraceDeterministic(t *testing.T) {
	want := faultedTrace(t, 23)
	if !bytes.Contains(want, []byte("fault_")) {
		t.Fatal("trace carries no fault annotations; the plan did not bite")
	}
	for i := 0; i < 3; i++ {
		if got := faultedTrace(t, 23); !bytes.Equal(got, want) {
			t.Fatalf("repeat %d: faulted trace differs", i)
		}
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if got := faultedTrace(t, 23); !bytes.Equal(got, want) {
		t.Fatal("faulted trace differs under GOMAXPROCS=1")
	}
	if got := faultedTrace(t, 24); bytes.Equal(got, want) {
		t.Error("different fault seed produced an identical trace")
	}
}
