// Package cluster is the concurrent "hardware" this reproduction substitutes
// for the paper's A100 cluster: every device is a goroutine executing its
// instruction list, and point-to-point transfers are real Go channels, so
// the blocking semantics of the pipeline (including the deadlocks that §5.1
// pass 4's send buffering exists to avoid) are exercised by the scheduler of
// a real concurrent runtime rather than by a model.
//
// Time is virtual: each device advances a local clock by the ground-truth
// duration of each instruction (plus deterministic jitter and unmodeled
// framework overhead), and messages carry their arrival timestamps, so a
// receive advances the consumer's clock to max(local, arrival) — a
// conservative parallel discrete-event simulation in which the channel
// blocking itself enforces causality.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/sim"
)

// ErrDeadlock is returned when the run makes no progress within the
// watchdog interval: some device blocked on a channel forever.
var ErrDeadlock = errors.New("cluster: deadlock (device blocked on p2p)")

// ErrMismatch is returned when a receive pops a message destined for a
// different instruction, i.e. send/recv orders diverge on a link.
var ErrMismatch = errors.New("cluster: send/recv order mismatch")

// errAborted marks secondary failures of devices torn down after another
// device hit the primary error; Run reports the primary error instead.
var errAborted = errors.New("cluster: aborted")

// Machine describes the emulated cluster.
type Machine struct {
	// Truth is the ground-truth per-instruction cost model (what the
	// hardware "really" does; the profiler only ever observes it through
	// noisy runs).
	Truth *cost.Estimator
	// Noise is the relative amplitude of deterministic per-instruction
	// jitter (e.g. 0.05 for ±5%).
	Noise float64
	// ExtraOverhead is per-instruction framework overhead in seconds that
	// the analytic estimator does not know about (the "un-modeled
	// behaviors" that make the paper's simulator overestimate throughput,
	// §6.6).
	ExtraOverhead float64
	// MemSlack multiplies dynamic memory to model allocator fragmentation
	// and transient buffers (≥ 1; 0 means 1).
	MemSlack float64
	// Hetero is the relative amplitude of static per-device speed variation
	// (chip binning, thermal placement). The profiler only ever measures
	// one device, so this is a systematic error source for the simulator —
	// the "un-modeled behaviors" of §6.6.
	Hetero float64
	// Seed makes all jitter reproducible.
	Seed uint64
	// LinkBuffer is the channel capacity per link; 0 uses a generous
	// default (eager sends). Set 1 for nearly-synchronous links.
	LinkBuffer int
	// DP is the data-parallel degree for the cool-down all-reduce.
	DP int
	// Watchdog is the wall-clock no-progress limit; 0 means 5s.
	Watchdog time.Duration
}

// SampleKey identifies a class of measured instruction durations.
type SampleKey struct {
	Kind  pipeline.Kind
	Stage int
}

// Report is the outcome of an emulated run.
type Report struct {
	// Total is the virtual makespan of all iterations in seconds.
	Total float64
	// IterTime is Total divided by the iteration count.
	IterTime float64
	// PeakMem is the measured per-device peak memory in bytes.
	PeakMem []float64
	// SamplesPerSec is the measured training throughput.
	SamplesPerSec float64
	// Durations holds the measured per-instruction durations, keyed by
	// (kind, stage), across all iterations — the raw material of
	// lightweight profiling.
	Durations map[SampleKey][]float64
	// DeviceDurations[d] holds the same samples restricted to device d (the
	// paper profiles the (D-1)-th device).
	DeviceDurations []map[SampleKey][]float64
}

type message struct {
	key    pipeline.Key
	arrive float64
}

type linkKey struct {
	from, to, channel int
}

// Run executes iters training iterations of the schedule on the emulated
// cluster and reports measured time, memory and per-instruction samples.
func (m *Machine) Run(s *pipeline.Schedule, iters int) (*Report, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("cluster: iteration count %d must be positive", iters)
	}
	if m.Truth == nil {
		return nil, fmt.Errorf("cluster: machine has no ground-truth cost model")
	}
	if m.Truth.Stages != s.NumStages() {
		return nil, fmt.Errorf("cluster: cost model built for %d stages, schedule has %d", m.Truth.Stages, s.NumStages())
	}
	dp := m.DP
	if dp <= 0 {
		dp = 1
	}
	watchdog := m.Watchdog
	if watchdog <= 0 {
		watchdog = 5 * time.Second
	}
	bufCap := m.LinkBuffer
	if bufCap <= 0 {
		bufCap = 4 * s.Micros * s.NumStages()
	}

	D := s.NumDevices()
	links := make(map[linkKey]chan message)
	for d, list := range s.Lists {
		for _, in := range list {
			if in.Kind == pipeline.SendAct || in.Kind == pipeline.SendGrad {
				lk := linkKey{d, s.PeerDevice(d, in), channelOf(in.Kind)}
				if links[lk] == nil {
					links[lk] = make(chan message, bufCap)
				}
			}
		}
	}

	type devResult struct {
		clock   float64
		samples map[SampleKey][]float64
		err     error
	}
	results := make([]devResult, D)
	done := make(chan struct{})
	abort := make(chan struct{})
	var abortOnce sync.Once
	var wg sync.WaitGroup

	for d := 0; d < D; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			res := &results[d]
			res.samples = make(map[SampleKey][]float64)
			clock := 0.0
			rng := newRNG(m.Seed, uint64(d))
			// Static per-device speed factor, fixed for the machine's
			// lifetime (drawn from a stream independent of the jitter).
			devRNG := newRNG(m.Seed^0xDEC0DE, uint64(d))
			devFactor := 1 + m.Hetero*devRNG.symmetric()
			for it := 0; it < iters; it++ {
				for _, in := range s.Lists[d] {
					var err error
					clock, err = m.exec(s, d, in, clock, dp, devFactor, rng, links, res.samples, abort)
					if err != nil {
						res.err = err
						abortOnce.Do(func() { close(abort) })
						return
					}
				}
			}
			res.clock = clock
		}(d)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(watchdog):
		abortOnce.Do(func() { close(abort) })
		<-done
		return nil, fmt.Errorf("%w after %v", ErrDeadlock, watchdog)
	}

	rep := &Report{
		PeakMem:         make([]float64, D),
		Durations:       make(map[SampleKey][]float64),
		DeviceDurations: make([]map[SampleKey][]float64, D),
	}
	var firstErr error
	for d := 0; d < D; d++ {
		if err := results[d].err; err != nil {
			if firstErr == nil || (errors.Is(firstErr, errAborted) && !errors.Is(err, errAborted)) {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for d := 0; d < D; d++ {
		if results[d].clock > rep.Total {
			rep.Total = results[d].clock
		}
		rep.DeviceDurations[d] = results[d].samples
		for k, v := range results[d].samples {
			rep.Durations[k] = append(rep.Durations[k], v...)
		}
	}
	rep.IterTime = rep.Total / float64(iters)

	slack := m.MemSlack
	if slack <= 0 {
		slack = 1
	}
	base := sim.PeakMemory(s, m.Truth)
	rng := newRNG(m.Seed, 0xA110C)
	for d, p := range base {
		static := m.Truth.FrameworkMem
		dyn := p - static
		rep.PeakMem[d] = static + dyn*slack*(1+0.01*rng.symmetric())
	}
	if rep.IterTime > 0 {
		rep.SamplesPerSec = float64(s.Micros*m.Truth.MicroBatch*dp) / rep.IterTime
	}
	return rep, nil
}

// exec runs one instruction on device d at local time clock and returns the
// new local time.
func (m *Machine) exec(
	s *pipeline.Schedule, d int, in pipeline.Instr, clock float64, dp int,
	devFactor float64, rng *rng, links map[linkKey]chan message,
	samples map[SampleKey][]float64, abort chan struct{},
) (float64, error) {
	e := m.Truth
	jitter := func() float64 { return devFactor * (1 + m.Noise*rng.symmetric()) }
	overhead := e.LaunchOverhead + m.ExtraOverhead

	switch in.Kind {
	case pipeline.Forward, pipeline.CkptForward, pipeline.Backward, pipeline.Recompute,
		pipeline.AllReduce, pipeline.OptimizerStep,
		pipeline.BackwardInput, pipeline.BackwardWeight:
		var base float64
		switch in.Kind {
		case pipeline.Forward, pipeline.CkptForward:
			base = e.FwTime[in.Stage]
		case pipeline.Backward:
			base = e.BwTime[in.Stage]
		case pipeline.BackwardInput:
			base = e.BwTime[in.Stage] * e.BwSplitRatio
		case pipeline.BackwardWeight:
			base = e.BwTime[in.Stage] * (1 - e.BwSplitRatio)
		case pipeline.Recompute:
			base = e.RcTime[in.Stage]
		case pipeline.AllReduce:
			base = e.AllReduceTime(dp, ownedStages(s, d))
		case pipeline.OptimizerStep:
			base = e.OptTime
		}
		dur := overhead + base*jitter()
		key := SampleKey{Kind: in.Kind, Stage: in.Stage}
		if in.Micro == pipeline.NoMicro {
			key.Stage = -1
		}
		samples[key] = append(samples[key], dur)
		return clock + dur, nil

	case pipeline.SendAct, pipeline.SendGrad:
		bytes := e.ActP2PBytes
		if in.Kind == pipeline.SendGrad {
			bytes = e.GradP2PBytes
		}
		lk := linkKey{d, s.PeerDevice(d, in), channelOf(in.Kind)}
		transfer := e.CommTime(bytes) * jitter()
		msg := message{key: s.MatchKey(in), arrive: clock + overhead + transfer}
		select {
		case links[lk] <- msg:
			// The measured wire time is visible to profiling (NCCL-style
			// transfer timing).
			samples[SampleKey{Kind: in.Kind, Stage: in.Stage}] = append(
				samples[SampleKey{Kind: in.Kind, Stage: in.Stage}], transfer)
			return clock + overhead, nil
		case <-abort:
			return clock, fmt.Errorf("%w while sending %s from device %d", errAborted, in, d)
		}

	case pipeline.RecvAct, pipeline.RecvGrad:
		lk := linkKey{s.PeerDevice(d, in), d, channelOf(in.Kind)}
		ch := links[lk]
		if ch == nil {
			return clock, fmt.Errorf("cluster: device %d has no link for %s", d, in)
		}
		select {
		case msg := <-ch:
			if msg.key != in.Key() {
				return clock, fmt.Errorf("%w: device %d expected %s, link delivered %v", ErrMismatch, d, in, msg.key)
			}
			if msg.arrive > clock {
				clock = msg.arrive
			}
			return clock + overhead, nil
		case <-abort:
			return clock, fmt.Errorf("%w while receiving %s on device %d", errAborted, in, d)
		}
	}
	return clock + overhead, nil
}

// ownedStages lists the stages whose weights device d holds.
func ownedStages(s *pipeline.Schedule, d int) []int {
	var out []int
	pl := s.Placement
	for st := 0; st < pl.NumStages(); st++ {
		for p := 0; p < pl.NumParts(); p++ {
			if pl.Device(p, st) == d {
				out = append(out, st)
				break
			}
		}
	}
	return out
}

func channelOf(k pipeline.Kind) int {
	if k == pipeline.SendGrad || k == pipeline.RecvGrad {
		return 1
	}
	return 0
}

// rng is a splitmix64-based deterministic generator; each device derives an
// independent stream from (seed, device).
type rng struct{ state uint64 }

func newRNG(seed, stream uint64) *rng {
	return &rng{state: seed*0x9E3779B97F4A7C15 ^ (stream+1)*0xBF58476D1CE4E5B9}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// symmetric returns a uniform value in [-1, 1).
func (r *rng) symmetric() float64 { return 2*r.float64() - 1 }
