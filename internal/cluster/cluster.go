// Package cluster is the concurrent "hardware" this reproduction substitutes
// for the paper's A100 cluster: every device is a goroutine executing its
// instruction list, and point-to-point transfers are real Go channels, so
// the blocking semantics of the pipeline (including the deadlocks that §5.1
// pass 4's send buffering exists to avoid) are exercised by the scheduler of
// a real concurrent runtime rather than by a model.
//
// Time is virtual: each device advances a local clock by the ground-truth
// duration of each instruction (plus deterministic jitter and unmodeled
// framework overhead), and messages carry their arrival timestamps, so a
// receive advances the consumer's clock to max(local, arrival) — a
// conservative parallel discrete-event simulation in which the channel
// blocking itself enforces causality.
//
// A Machine can carry an obs.Sink: each device then records one obs.Event
// per executed instruction (virtual start/end, p2p queue wait, modeled
// memory) in a device-local slice and the stream is delivered after the run
// in deterministic order. A nil sink allocates no events and perturbs
// neither virtual time nor the jitter streams.
package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mario/internal/cost"
	"mario/internal/fault"
	"mario/internal/obs"
	"mario/internal/pipeline"
	"mario/internal/sim"
)

// ErrDeadlock is returned when the run makes no progress within the
// watchdog interval: some device blocked on a channel forever. The error
// text names, per stuck device, the pending instruction and the link it is
// blocked on.
var ErrDeadlock = errors.New("cluster: deadlock (device blocked on p2p)")

// ErrMismatch is returned when a receive pops a message destined for a
// different instruction, i.e. send/recv orders diverge on a link.
var ErrMismatch = errors.New("cluster: send/recv order mismatch")

// errAborted marks secondary failures of devices torn down after another
// device hit the primary error; Run reports the primary error instead.
var errAborted = errors.New("cluster: aborted")

// Machine describes the emulated cluster.
type Machine struct {
	// Truth is the ground-truth per-instruction cost model (what the
	// hardware "really" does; the profiler only ever observes it through
	// noisy runs).
	Truth *cost.Estimator
	// Noise is the relative amplitude of deterministic per-instruction
	// jitter (e.g. 0.05 for ±5%).
	Noise float64
	// ExtraOverhead is per-instruction framework overhead in seconds that
	// the analytic estimator does not know about (the "un-modeled
	// behaviors" that make the paper's simulator overestimate throughput,
	// §6.6).
	ExtraOverhead float64
	// MemSlack multiplies dynamic memory to model allocator fragmentation
	// and transient buffers (≥ 1; 0 means 1).
	MemSlack float64
	// Hetero is the relative amplitude of static per-device speed variation
	// (chip binning, thermal placement). The profiler only ever measures
	// one device, so this is a systematic error source for the simulator —
	// the "un-modeled behaviors" of §6.6.
	Hetero float64
	// SpeedFactors, when non-nil, gives each device a known static relative
	// compute speed (1 = nominal, 0.8 = compute runs 25% slower). Unlike the
	// unmodeled Hetero jitter this is declared cluster heterogeneity — the
	// planner sees the same numbers through cost.Estimator.DeviceSpeed.
	// Compute instructions on device d are scaled by 1/SpeedFactors[d]; p2p
	// transfers are link-bound and stay unscaled. Entries beyond the device
	// count are ignored; missing, zero or negative entries mean nominal
	// speed. Composes multiplicatively (and deterministically) with injected
	// fault slowdowns on the same device.
	SpeedFactors []float64
	// Seed makes all jitter reproducible.
	Seed uint64
	// LinkBuffer is the channel capacity per link; 0 uses a generous
	// default (eager sends). Set 1 for nearly-synchronous links.
	LinkBuffer int
	// DP is the data-parallel degree for the cool-down all-reduce.
	DP int
	// Watchdog is the wall-clock no-progress limit; 0 means 5s. The
	// watchdog re-arms whenever any device executes an instruction, so
	// long runs do not trip it as long as they keep making progress.
	Watchdog time.Duration
	// Sink, when non-nil, receives one obs.Event per executed instruction
	// after the run completes, device-major in execution order. The event
	// stream is deterministic for a fixed seed and does not perturb the
	// run: a nil sink allocates no events.
	Sink obs.Sink
	// Faults, when non-nil, degrades the run under the fault plan: compute
	// slowdowns, link latency/bandwidth/drop faults with bounded retry, and
	// whole-device stall windows — all in virtual time, so a faulted run is
	// exactly as reproducible as a healthy one. A nil (or empty) plan costs
	// nothing.
	Faults *fault.Plan
}

// SampleKey identifies a class of measured instruction durations.
type SampleKey struct {
	Kind  pipeline.Kind
	Stage int
}

// Report is the outcome of an emulated run.
type Report struct {
	// Total is the virtual makespan of all iterations in seconds.
	Total float64
	// IterTime is Total divided by the iteration count.
	IterTime float64
	// PeakMem is the measured per-device peak memory in bytes.
	PeakMem []float64
	// SamplesPerSec is the measured training throughput.
	SamplesPerSec float64
	// Durations holds the measured per-instruction durations, keyed by
	// (kind, stage), across all iterations — the raw material of
	// lightweight profiling.
	Durations map[SampleKey][]float64
	// DeviceDurations[d] holds the same samples restricted to device d (the
	// paper profiles the (D-1)-th device).
	DeviceDurations []map[SampleKey][]float64
	// WatchdogResets counts how many times the no-progress watchdog
	// observed progress and re-armed during the run (0 for runs shorter
	// than one watchdog interval).
	WatchdogResets int
	// StallResets counts watchdog firings that found no progress but at
	// least one device inside an injected wall-clock stall, so the watchdog
	// re-armed instead of declaring a deadlock.
	StallResets int
	// FaultDrops, FaultStall and FaultSlowed summarise the injected faults:
	// total dropped p2p attempts, total injected stall time in virtual
	// seconds, and the count of compute instructions that ran slowed. All
	// zero on a healthy run.
	FaultDrops  int
	FaultStall  float64
	FaultSlowed int
}

type message struct {
	key    pipeline.Key
	arrive float64
}

type linkKey struct {
	from, to, channel int
}

// devStatus publishes what a device is currently blocked on, so the
// watchdog can name the stuck instruction and link when it fires. Devices
// write it only around potentially-blocking channel operations.
type devStatus struct {
	mu      sync.Mutex
	blocked bool
	send    bool
	in      pipeline.Instr
	iter    int
	peer    int
}

func (st *devStatus) set(in pipeline.Instr, iter, peer int, send bool) {
	st.mu.Lock()
	st.blocked, st.send, st.in, st.iter, st.peer = true, send, in, iter, peer
	st.mu.Unlock()
}

func (st *devStatus) clear() {
	st.mu.Lock()
	st.blocked = false
	st.mu.Unlock()
}

// describe renders the blocked state, or "" when the device is not blocked.
func (st *devStatus) describe(d int) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.blocked {
		return ""
	}
	dir, from, to := "recv", st.peer, d
	if st.send {
		dir, from, to = "send", d, st.peer
	}
	return fmt.Sprintf("dev%d blocked on %s %s (stage %d, micro %d, iter %d) link %d->%d[%s]",
		d, dir, st.in, st.in.Stage, st.in.Micro, st.iter, from, to, channelName(st.in.Kind))
}

// Run executes iters training iterations of the schedule on the emulated
// cluster and reports measured time, memory and per-instruction samples.
func (m *Machine) Run(s *pipeline.Schedule, iters int) (*Report, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("cluster: iteration count %d must be positive", iters)
	}
	if m.Truth == nil {
		return nil, fmt.Errorf("cluster: machine has no ground-truth cost model")
	}
	if m.Truth.Stages != s.NumStages() {
		return nil, fmt.Errorf("cluster: cost model built for %d stages, schedule has %d", m.Truth.Stages, s.NumStages())
	}
	dp := m.DP
	if dp <= 0 {
		dp = 1
	}
	watchdog := m.Watchdog
	if watchdog <= 0 {
		watchdog = 5 * time.Second
	}
	bufCap := m.LinkBuffer
	if bufCap <= 0 {
		bufCap = 4 * s.Micros * s.NumStages()
	}

	D := s.NumDevices()
	var inj *fault.Injector
	if !m.Faults.Empty() {
		var err error
		if inj, err = m.Faults.Compile(D); err != nil {
			return nil, err
		}
	}
	links := make(map[linkKey]chan message)
	for d, list := range s.Lists {
		for _, in := range list {
			if in.Kind == pipeline.SendAct || in.Kind == pipeline.SendGrad {
				lk := linkKey{d, s.PeerDevice(d, in), channelOf(in.Kind)}
				if links[lk] == nil {
					links[lk] = make(chan message, bufCap)
				}
			}
		}
	}

	type devResult struct {
		clock   float64
		samples map[SampleKey][]float64
		events  []obs.Event
		err     error
	}
	results := make([]devResult, D)
	statuses := make([]devStatus, D)
	var progress atomic.Uint64
	done := make(chan struct{})
	abort := make(chan struct{})
	var abortOnce sync.Once
	var wg sync.WaitGroup

	for d := 0; d < D; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			res := &results[d]
			res.samples = make(map[SampleKey][]float64)
			r := &devRunner{
				m: m, s: s, d: d, dp: dp,
				rng:      newRNG(m.Seed, uint64(d)),
				samples:  res.samples,
				links:    links,
				abort:    abort,
				status:   &statuses[d],
				progress: &progress,
			}
			if inj != nil {
				r.fj = inj.Device(d)
			}
			// Static per-device speed factor, fixed for the machine's
			// lifetime (drawn from a stream independent of the jitter).
			devRNG := newRNG(m.Seed^0xDEC0DE, uint64(d))
			r.devFactor = 1 + m.Hetero*devRNG.symmetric()
			r.speedSlow = slowFactor(m.SpeedFactors, d)
			if m.Sink != nil {
				r.events = make([]obs.Event, 0, len(s.Lists[d])*iters)
				r.mem = sim.NewMemSim(s, m.Truth, d)
			}
			for it := 0; it < iters; it++ {
				r.iter = it
				for _, in := range s.Lists[d] {
					if err := r.exec(in); err != nil {
						res.err = err
						abortOnce.Do(func() { close(abort) })
						return
					}
					progress.Add(1)
				}
			}
			res.clock = r.clock
			res.events = r.events
		}(d)
	}
	go func() { wg.Wait(); close(done) }()

	resets, stallResets := 0, 0
	timer := time.NewTimer(watchdog)
	defer timer.Stop()
	last := uint64(0)
watchLoop:
	for {
		select {
		case <-done:
			break watchLoop
		case <-timer.C:
			if cur := progress.Load(); cur != last {
				// Progress since the last check: re-arm.
				last = cur
				resets++
				timer.Reset(watchdog)
				continue
			}
			if inj != nil && inj.Stalled() > 0 {
				// No progress, but a device is inside an injected wall-clock
				// stall — that is the fault plan at work, not a deadlock.
				stallResets++
				timer.Reset(watchdog)
				continue
			}
			abortOnce.Do(func() { close(abort) })
			<-done
			var stuck []string
			for d := range statuses {
				if desc := statuses[d].describe(d); desc != "" {
					stuck = append(stuck, desc)
				}
			}
			detail := ""
			if len(stuck) > 0 {
				detail = ": " + strings.Join(stuck, "; ")
			}
			return nil, fmt.Errorf("%w after %v of no progress%s", ErrDeadlock, watchdog, detail)
		}
	}

	rep := &Report{
		PeakMem:         make([]float64, D),
		Durations:       make(map[SampleKey][]float64),
		DeviceDurations: make([]map[SampleKey][]float64, D),
		WatchdogResets:  resets,
		StallResets:     stallResets,
	}
	if inj != nil {
		for d := 0; d < D; d++ {
			fj := inj.Device(d)
			rep.FaultDrops += fj.Drops
			rep.FaultStall += fj.StallVirtual
			rep.FaultSlowed += fj.Slowed
		}
	}
	var firstErr error
	for d := 0; d < D; d++ {
		if err := results[d].err; err != nil {
			if firstErr == nil || (errors.Is(firstErr, errAborted) && !errors.Is(err, errAborted)) {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for d := 0; d < D; d++ {
		if results[d].clock > rep.Total {
			rep.Total = results[d].clock
		}
		rep.DeviceDurations[d] = results[d].samples
		for k, v := range results[d].samples {
			rep.Durations[k] = append(rep.Durations[k], v...)
		}
	}
	rep.IterTime = rep.Total / float64(iters)

	slack := m.MemSlack
	if slack <= 0 {
		slack = 1
	}
	base := sim.PeakMemory(s, m.Truth)
	rng := newRNG(m.Seed, 0xA110C)
	for d, p := range base {
		static := m.Truth.FrameworkMem
		dyn := p - static
		rep.PeakMem[d] = static + dyn*slack*(1+0.01*rng.symmetric())
	}
	if rep.IterTime > 0 {
		rep.SamplesPerSec = float64(s.Micros*m.Truth.MicroBatch*dp) / rep.IterTime
	}
	if m.Sink != nil {
		for d := 0; d < D; d++ {
			for _, ev := range results[d].events {
				m.Sink.Emit(ev)
			}
		}
	}
	return rep, nil
}

// devRunner is the per-goroutine execution state of one emulated device.
type devRunner struct {
	m         *Machine
	s         *pipeline.Schedule
	d         int
	dp        int
	devFactor float64
	// speedSlow is the declared compute slowdown 1/SpeedFactors[d]
	// (exactly 1 on a homogeneous machine).
	speedSlow float64
	rng       *rng
	samples   map[SampleKey][]float64
	links     map[linkKey]chan message
	abort     chan struct{}
	status    *devStatus
	progress  *atomic.Uint64
	iter      int
	clock     float64
	// fj is the device's fault-injector view; nil on a healthy run.
	fj *fault.DeviceInjector
	// events and mem are nil when the machine has no sink attached; the
	// recording path then allocates nothing.
	events []obs.Event
	mem    *sim.MemSim
}

// exec runs one instruction, advancing the device's virtual clock and, when
// a sink is attached, recording the instruction's event.
func (r *devRunner) exec(in pipeline.Instr) error {
	var stall float64
	if r.fj != nil {
		// Injected whole-device stalls take effect at instruction
		// boundaries: the virtual clock jumps, and an optional wall-clock
		// hold lets the watchdog's stall classification be exercised.
		var wall time.Duration
		stall, wall = r.fj.TakeStall(r.clock)
		r.clock += stall
		if wall > 0 {
			r.fj.EnterStall()
			select {
			case <-time.After(wall):
			case <-r.abort:
			}
			r.fj.ExitStall()
		}
	}
	var ev *obs.Event
	if r.events != nil {
		r.events = append(r.events, obs.Event{
			Device: r.d, Iter: r.iter, Kind: in.Kind,
			Micro: in.Micro, Part: in.Part, Stage: in.Stage,
			Peer: -1, Start: r.clock, Buffered: in.Buffered,
			FaultStall: stall,
		})
		ev = &r.events[len(r.events)-1]
	}
	if err := r.execClock(in, ev); err != nil {
		return err
	}
	if ev != nil {
		ev.End = r.clock
		ev.Mem = r.mem.Step(in)
	}
	return nil
}

// execClock advances the virtual clock across one instruction.
func (r *devRunner) execClock(in pipeline.Instr, ev *obs.Event) error {
	m, s, d := r.m, r.s, r.d
	e := m.Truth
	jitter := func() float64 { return r.devFactor * (1 + m.Noise*r.rng.symmetric()) }
	overhead := e.LaunchOverhead + m.ExtraOverhead

	switch in.Kind {
	case pipeline.Forward, pipeline.CkptForward, pipeline.Backward, pipeline.Recompute,
		pipeline.AllReduce, pipeline.OptimizerStep,
		pipeline.BackwardInput, pipeline.BackwardWeight:
		var base float64
		switch in.Kind {
		case pipeline.Forward, pipeline.CkptForward:
			base = e.FwTime[in.Stage]
		case pipeline.Backward:
			base = e.BwTime[in.Stage]
		case pipeline.BackwardInput:
			base = e.BwTime[in.Stage] * e.BwSplitRatio
		case pipeline.BackwardWeight:
			base = e.BwTime[in.Stage] * (1 - e.BwSplitRatio)
		case pipeline.Recompute:
			base = e.RcTime[in.Stage]
		case pipeline.AllReduce:
			base = e.AllReduceTime(r.dp, ownedStages(s, d))
		case pipeline.OptimizerStep:
			base = e.OptTime
		}
		dur := overhead + base*jitter()*r.speedSlow
		if r.fj != nil {
			// A slowdown degrades the hardware itself: the slowed duration is
			// what profiling observes, exactly as a thermally-throttled chip
			// would be measured.
			if f := r.fj.ComputeFactor(r.clock); f != 1 {
				dur *= f
				if ev != nil {
					ev.FaultSlow = f
				}
			}
		}
		key := SampleKey{Kind: in.Kind, Stage: in.Stage}
		if in.Micro == pipeline.NoMicro {
			key.Stage = -1
		}
		r.samples[key] = append(r.samples[key], dur)
		r.clock += dur
		return nil

	case pipeline.SendAct, pipeline.SendGrad:
		bytes := e.ActP2PBytes
		if in.Kind == pipeline.SendGrad {
			bytes = e.GradP2PBytes
		}
		peer := s.PeerDevice(d, in)
		lk := linkKey{d, peer, channelOf(in.Kind)}
		transfer := e.CommTime(bytes) * jitter()
		if r.fj != nil {
			tr, err := r.fj.Transfer(peer, channelName(in.Kind), transfer, r.clock)
			if err != nil {
				return fmt.Errorf("%w (link %d->%d[%s], %s)", err, d, peer, channelName(in.Kind), in)
			}
			transfer = tr.Delay
			if ev != nil {
				ev.FaultDrops = tr.Drops
			}
		}
		msg := message{key: s.MatchKey(in), arrive: r.clock + overhead + transfer}
		if ev != nil {
			ev.Peer, ev.Bytes = peer, bytes
		}
		r.status.set(in, r.iter, peer, true)
		select {
		case r.links[lk] <- msg:
			r.status.clear()
			// The measured wire time is visible to profiling (NCCL-style
			// transfer timing).
			r.samples[SampleKey{Kind: in.Kind, Stage: in.Stage}] = append(
				r.samples[SampleKey{Kind: in.Kind, Stage: in.Stage}], transfer)
			r.clock += overhead
			return nil
		case <-r.abort:
			return fmt.Errorf("%w while sending %s from device %d", errAborted, in, d)
		}

	case pipeline.RecvAct, pipeline.RecvGrad:
		peer := s.PeerDevice(d, in)
		lk := linkKey{peer, d, channelOf(in.Kind)}
		ch := r.links[lk]
		if ch == nil {
			return fmt.Errorf("cluster: device %d has no link for %s", d, in)
		}
		if ev != nil {
			ev.Peer = peer
			if in.Kind == pipeline.RecvGrad {
				ev.Bytes = e.GradP2PBytes
			} else {
				ev.Bytes = e.ActP2PBytes
			}
		}
		r.status.set(in, r.iter, peer, false)
		select {
		case msg := <-ch:
			r.status.clear()
			if msg.key != in.Key() {
				return fmt.Errorf("%w: device %d expected %s, link delivered %v", ErrMismatch, d, in, msg.key)
			}
			if msg.arrive > r.clock {
				if ev != nil {
					ev.Wait = msg.arrive - r.clock
				}
				r.clock = msg.arrive
			}
			r.clock += overhead
			return nil
		case <-r.abort:
			return fmt.Errorf("%w while receiving %s on device %d", errAborted, in, d)
		}
	}
	r.clock += overhead
	return nil
}

// slowFactor converts a declared per-device speed into the compute slowdown
// multiplier: 1/speeds[d], or exactly 1 when the slice is short, missing, or
// the entry is non-positive.
func slowFactor(speeds []float64, d int) float64 {
	if d < 0 || d >= len(speeds) {
		return 1
	}
	if s := speeds[d]; s > 0 {
		return 1 / s
	}
	return 1
}

// ownedStages lists the stages whose weights device d holds.
func ownedStages(s *pipeline.Schedule, d int) []int {
	var out []int
	pl := s.Placement
	for st := 0; st < pl.NumStages(); st++ {
		for p := 0; p < pl.NumParts(); p++ {
			if pl.Device(p, st) == d {
				out = append(out, st)
				break
			}
		}
	}
	return out
}

func channelOf(k pipeline.Kind) int {
	if k == pipeline.SendGrad || k == pipeline.RecvGrad {
		return 1
	}
	return 0
}

// channelName tags a comm kind's link for human-readable diagnostics.
func channelName(k pipeline.Kind) string {
	if k == pipeline.SendGrad || k == pipeline.RecvGrad {
		return "grad"
	}
	return "act"
}

// rng is a splitmix64-based deterministic generator; each device derives an
// independent stream from (seed, device).
type rng struct{ state uint64 }

func newRNG(seed, stream uint64) *rng {
	return &rng{state: seed*0x9E3779B97F4A7C15 ^ (stream+1)*0xBF58476D1CE4E5B9}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// symmetric returns a uniform value in [-1, 1).
func (r *rng) symmetric() float64 { return 2*r.float64() - 1 }
