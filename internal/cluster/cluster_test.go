package cluster

import (
	"errors"
	"math"
	"testing"
	"time"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

func machine(e *cost.Estimator) *Machine {
	return &Machine{Truth: e, Seed: 42}
}

func mustRun(t *testing.T, m *Machine, s *pipeline.Schedule, iters int) *Report {
	t.Helper()
	r, err := m.Run(s, iters)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func buildSched(t *testing.T, sch pipeline.Scheme, cfg scheme.Config) *pipeline.Schedule {
	t.Helper()
	s, err := scheme.Build(sch, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

// TestClusterMatchesSimulatorNoiseless: with zero noise and zero extra
// overhead, the concurrent execution and the DP simulator agree on the
// makespan for every scheme — two independent implementations of the same
// semantics.
func TestClusterMatchesSimulatorNoiseless(t *testing.T) {
	for _, tc := range []struct {
		sch pipeline.Scheme
		cfg scheme.Config
	}{
		{pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8}},
		{pipeline.SchemeGPipe, scheme.Config{Devices: 4, Micros: 8}},
		{pipeline.SchemeChimera, scheme.Config{Devices: 4, Micros: 8}},
		{pipeline.SchemeInterleave, scheme.Config{Devices: 4, Micros: 8, Chunks: 2}},
	} {
		s := buildSched(t, tc.sch, tc.cfg)
		e := cost.Uniform(s.NumStages(), 1, 2, 0.25)
		want, err := sim.Simulate(s, e, sim.Options{})
		if err != nil {
			t.Fatalf("%s: sim: %v", tc.sch, err)
		}
		got := mustRun(t, machine(e), s, 1)
		if math.Abs(got.Total-want.Total) > 1e-9 {
			t.Errorf("%s: cluster makespan %v != simulator %v", tc.sch, got.Total, want.Total)
		}
	}
}

// TestIterationsScaleLinearly: k iterations take k times one iteration when
// the pipeline flushes between iterations.
func TestIterationsScaleLinearly(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	e := cost.Uniform(4, 1, 2, 0.25)
	r1 := mustRun(t, machine(e), s, 1)
	r3 := mustRun(t, machine(e), s, 3)
	if math.Abs(r3.IterTime-r1.IterTime) > r1.IterTime*0.35 {
		t.Errorf("per-iteration time drifted: 1 iter %v, 3 iters %v", r1.IterTime, r3.IterTime)
	}
}

// TestNoiseIsDeterministic: the same seed reproduces bit-identical results;
// different seeds differ.
func TestNoiseIsDeterministic(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	m1 := &Machine{Truth: e, Noise: 0.05, Seed: 7}
	m2 := &Machine{Truth: e, Noise: 0.05, Seed: 7}
	m3 := &Machine{Truth: e, Noise: 0.05, Seed: 8}
	a := mustRun(t, m1, s, 2)
	b := mustRun(t, m2, s, 2)
	c := mustRun(t, m3, s, 2)
	if a.Total != b.Total {
		t.Errorf("same seed, different totals: %v vs %v", a.Total, b.Total)
	}
	if a.Total == c.Total {
		t.Errorf("different seeds produced identical totals %v", a.Total)
	}
}

// TestExtraOverheadSlowsRuns: unmodeled overhead makes measured runs slower
// than the noiseless baseline (the mechanism behind the simulator's
// throughput overestimate in Fig. 10).
func TestExtraOverheadSlowsRuns(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	base := mustRun(t, machine(e), s, 1)
	slow := mustRun(t, &Machine{Truth: e, ExtraOverhead: 0.05, Seed: 42}, s, 1)
	if slow.Total <= base.Total {
		t.Errorf("extra overhead did not slow the run: %v vs %v", slow.Total, base.Total)
	}
}

// TestDeadlockDetection: an intentionally crossed schedule (two devices that
// both receive before sending) trips the watchdog instead of hanging.
func TestDeadlockDetection(t *testing.T) {
	pl := pipeline.NewLinearPlacement(2)
	s := &pipeline.Schedule{
		Scheme:    pipeline.Scheme1F1B,
		Placement: pl,
		Micros:    1,
		Lists: [][]pipeline.Instr{
			{
				{Kind: pipeline.RecvGrad, Micro: 0, Stage: 0},
				{Kind: pipeline.Forward, Micro: 0, Stage: 0},
				{Kind: pipeline.SendAct, Micro: 0, Stage: 0},
				{Kind: pipeline.Backward, Micro: 0, Stage: 0},
			},
			{
				{Kind: pipeline.RecvAct, Micro: 0, Stage: 1},
				{Kind: pipeline.Forward, Micro: 0, Stage: 1},
				{Kind: pipeline.Backward, Micro: 0, Stage: 1},
				{Kind: pipeline.SendGrad, Micro: 0, Stage: 1},
			},
		},
	}
	// Device 0 receives the gradient before sending the activation device 1
	// needs to produce it: a true cyclic wait.
	e := cost.Uniform(2, 1, 2, 0.25)
	m := &Machine{Truth: e, Seed: 1, Watchdog: 200 * time.Millisecond}
	_, err := m.Run(s, 1)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

// TestMismatchDetection: reordering two sends on the same link without
// reordering the receives is caught.
func TestMismatchDetection(t *testing.T) {
	s := buildSched(t, pipeline.SchemeGPipe, scheme.Config{Devices: 2, Micros: 2})
	// Swap the first two SendActs on device 0.
	list := s.Lists[0]
	var saIdx []int
	for i, in := range list {
		if in.Kind == pipeline.SendAct {
			saIdx = append(saIdx, i)
		}
	}
	if len(saIdx) < 2 {
		t.Fatal("expected two sends on device 0")
	}
	list[saIdx[0]].Micro, list[saIdx[1]].Micro = list[saIdx[1]].Micro, list[saIdx[0]].Micro
	e := cost.Uniform(2, 1, 2, 0.25)
	m := &Machine{Truth: e, Seed: 1, Watchdog: 200 * time.Millisecond}
	if _, err := m.Run(s, 1); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
}

// TestSamplesCollected: profiling samples cover forward and backward on
// every stage with one entry per (iteration × instruction).
func TestSamplesCollected(t *testing.T) {
	const iters = 3
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 4})
	e := cost.Uniform(4, 1, 2, 0.25)
	r := mustRun(t, machine(e), s, iters)
	for st := 0; st < 4; st++ {
		fw := r.Durations[SampleKey{Kind: pipeline.Forward, Stage: st}]
		if len(fw) != 4*iters {
			t.Errorf("stage %d: %d forward samples, want %d", st, len(fw), 4*iters)
		}
	}
	if len(r.DeviceDurations) != 4 {
		t.Fatalf("per-device samples missing")
	}
	// Device D-1 (the paper's profiling target) must have samples too.
	if len(r.DeviceDurations[3]) == 0 {
		t.Error("no samples on the (D-1)-th device")
	}
}

// TestMemSlackRaisesMeasuredMemory: fragmentation slack inflates measured
// peaks above the model's prediction.
func TestMemSlackRaisesMeasuredMemory(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	predicted := sim.PeakMemory(s, e)
	m := &Machine{Truth: e, MemSlack: 1.10, Seed: 3}
	r := mustRun(t, m, s, 1)
	for d := range predicted {
		if r.PeakMem[d] <= predicted[d]*1.05 {
			t.Errorf("dev%d measured %v not ≥ 5%% above predicted %v", d, r.PeakMem[d], predicted[d])
		}
	}
}

// TestRunRejectsBadInput covers the argument validation paths.
func TestRunRejectsBadInput(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 2, Micros: 2})
	e := cost.Uniform(2, 1, 2, 0.25)
	if _, err := (&Machine{Truth: e}).Run(s, 0); err == nil {
		t.Error("iters=0 accepted")
	}
	if _, err := (&Machine{}).Run(s, 1); err == nil {
		t.Error("nil truth accepted")
	}
	wrong := cost.Uniform(3, 1, 2, 0.25)
	if _, err := (&Machine{Truth: wrong}).Run(s, 1); err == nil {
		t.Error("stage mismatch accepted")
	}
}
