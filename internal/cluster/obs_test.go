package cluster

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"mario/internal/cost"
	"mario/internal/obs"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// TestSinkDoesNotPerturbRun: the same machine produces byte-identical
// reports with a recording sink and with none — observability must not touch
// virtual time or the jitter streams.
func TestSinkDoesNotPerturbRun(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)

	plain := mustRun(t, &Machine{Truth: e, Noise: 0.05, ExtraOverhead: 0.01, Seed: 9}, s, 2)
	rec := &obs.Recorder{}
	observed := mustRun(t, &Machine{Truth: e, Noise: 0.05, ExtraOverhead: 0.01, Seed: 9, Sink: rec}, s, 2)

	// WatchdogResets depends on wall-clock scheduling, not the virtual run;
	// mask it before the exact comparison.
	plain.WatchdogResets, observed.WatchdogResets = 0, 0
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("attaching a sink changed the report:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
	if len(rec.Events) == 0 {
		t.Fatal("recorder saw no events")
	}
}

// TestEventStreamComplete: one event per executed instruction, delivered
// device-major in execution order with sane intervals.
func TestEventStreamComplete(t *testing.T) {
	const iters = 2
	s := buildSched(t, pipeline.SchemeChimera, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(s.NumStages(), 1, 2, 0.25)
	rec := &obs.Recorder{}
	mustRun(t, &Machine{Truth: e, Noise: 0.02, Seed: 5, Sink: rec}, s, iters)

	want := 0
	for _, list := range s.Lists {
		want += len(list) * iters
	}
	if len(rec.Events) != want {
		t.Fatalf("got %d events, want %d", len(rec.Events), want)
	}
	lastDev, lastEnd := 0, 0.0
	for i, ev := range rec.Events {
		if ev.Device < lastDev {
			t.Fatalf("event %d: device order regressed (%d after %d)", i, ev.Device, lastDev)
		}
		if ev.Device > lastDev {
			lastDev, lastEnd = ev.Device, 0
		}
		if ev.Start < lastEnd-1e-12 {
			t.Fatalf("event %d on dev%d starts at %v before previous end %v", i, ev.Device, ev.Start, lastEnd)
		}
		if ev.End < ev.Start {
			t.Fatalf("event %d: End %v < Start %v", i, ev.End, ev.Start)
		}
		if ev.Wait < 0 {
			t.Fatalf("event %d: negative wait %v", i, ev.Wait)
		}
		if ev.Kind.IsComm() != (ev.Peer >= 0) {
			t.Fatalf("event %d: kind %s with peer %d", i, ev.Kind, ev.Peer)
		}
		lastEnd = ev.End
	}
}

// TestEventStreamDeterministic: a fixed seed reproduces the identical event
// stream across runs.
func TestEventStreamDeterministic(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	run := func() []obs.Event {
		rec := &obs.Recorder{}
		mustRun(t, &Machine{Truth: e, Noise: 0.05, Seed: 11, Sink: rec}, s, 2)
		return rec.Events
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different event streams")
	}
}

// TestMeasuredBubbleMatchesPredicted: on a noise-free machine the measured
// per-device bubble ratio derived from the event stream equals the
// simulator's prediction — the measured counterpart of sim.Result.BubbleRatio
// closes the loop of Fig. 5.
func TestMeasuredBubbleMatchesPredicted(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	pred, err := sim.Simulate(s, e, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.Recorder{}
	rep := mustRun(t, &Machine{Truth: e, Seed: 42, Sink: rec}, s, 1)
	st := obs.Compute(rec.Events, rep.Total)
	for d := range st.Devices {
		got, want := st.BubbleRatio(d), pred.BubbleRatio(d)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("dev%d: measured bubble %v, predicted %v", d, got, want)
		}
	}
}

// TestEventMemoryMatchesSim: the per-event memory trace peaks at the
// simulator's predicted per-device peak (the machine's slack/noise applies
// to the report, not to the modeled trace).
func TestEventMemoryMatchesSim(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	rec := &obs.Recorder{}
	mustRun(t, &Machine{Truth: e, Seed: 1, Sink: rec}, s, 1)
	want := sim.PeakMemory(s, e)
	st := obs.Compute(rec.Events, 0)
	for d := range st.Devices {
		if got := st.Devices[d].PeakMem; got > want[d]+1e-9 {
			t.Errorf("dev%d: event memory peak %v exceeds predicted %v", d, got, want[d])
		}
	}
}

// TestDeadlockErrorNamesCulprit: the enriched deadlock error identifies the
// stuck devices, their pending instructions and the blocked links.
func TestDeadlockErrorNamesCulprit(t *testing.T) {
	pl := pipeline.NewLinearPlacement(2)
	s := &pipeline.Schedule{
		Scheme:    pipeline.Scheme1F1B,
		Placement: pl,
		Micros:    1,
		Lists: [][]pipeline.Instr{
			{
				{Kind: pipeline.RecvGrad, Micro: 0, Stage: 0},
				{Kind: pipeline.Forward, Micro: 0, Stage: 0},
				{Kind: pipeline.SendAct, Micro: 0, Stage: 0},
				{Kind: pipeline.Backward, Micro: 0, Stage: 0},
			},
			{
				{Kind: pipeline.RecvAct, Micro: 0, Stage: 1},
				{Kind: pipeline.Forward, Micro: 0, Stage: 1},
				{Kind: pipeline.Backward, Micro: 0, Stage: 1},
				{Kind: pipeline.SendGrad, Micro: 0, Stage: 1},
			},
		},
	}
	e := cost.Uniform(2, 1, 2, 0.25)
	m := &Machine{Truth: e, Seed: 1, Watchdog: 200 * time.Millisecond}
	_, err := m.Run(s, 1)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	msg := err.Error()
	for _, want := range []string{
		"dev0 blocked on recv RG0^0",
		"link 1->0[grad]",
		"dev1 blocked on recv RA0^0",
		"link 0->1[act]",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock error missing %q:\n%s", want, msg)
		}
	}
}

// TestWatchdogResetsCounted: a watchdog much shorter than the run re-arms at
// least once on progress instead of tripping.
func TestWatchdogResetsCounted(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	// Slow the wall clock down with many iterations and a 1ms watchdog: the
	// devices keep making progress, so the run must complete.
	m := &Machine{Truth: e, Seed: 2, Watchdog: time.Millisecond}
	rep := mustRun(t, m, s, 50)
	if rep.WatchdogResets < 1 {
		t.Skip("run finished inside one watchdog interval (machine too fast)")
	}
}
