package cluster

import (
	"math"
	"reflect"
	"testing"

	"mario/internal/cost"
	"mario/internal/fault"
	"mario/internal/pipeline"
	"mario/internal/scheme"
)

// TestSpeedFactorsSlowCompute: a declared 0.8× device stretches its own
// compute samples by exactly 1/0.8 and leaves the other devices untouched.
func TestSpeedFactorsSlowCompute(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	base := mustRun(t, &Machine{Truth: e, Seed: 11}, s, 1)
	slow := mustRun(t, &Machine{Truth: e, Seed: 11,
		SpeedFactors: []float64{1, 1, 0.8, 1}}, s, 1)
	if slow.Total <= base.Total {
		t.Errorf("0.8x device did not stretch the run: %v vs %v", slow.Total, base.Total)
	}
	oh := e.LaunchOverhead
	for d := 0; d < 4; d++ {
		want := 1.0
		if d == 2 {
			want = 1 / 0.8
		}
		for k, durs := range base.DeviceDurations[d] {
			if !isCompute(k.Kind) {
				continue
			}
			got := slow.DeviceDurations[d][k]
			for i := range durs {
				ratio := (got[i] - oh) / (durs[i] - oh)
				if math.Abs(ratio-want) > 1e-9 {
					t.Fatalf("device %d %v sample %d: stretch %v, want %v", d, k, i, ratio, want)
				}
			}
		}
	}
}

// TestSpeedFactorStacksWithFaultSlowdown is the stacking contract: a static
// 0.5× speed factor and an injected 2× straggler fault on the same device
// compose multiplicatively — every compute sample stretches by exactly
// (1/0.5)·2 = 4× over the healthy nominal run — and the whole composition
// stays deterministic (pinned under -race by running it twice).
func TestSpeedFactorStacksWithFaultSlowdown(t *testing.T) {
	s := buildSched(t, pipeline.Scheme1F1B, scheme.Config{Devices: 4, Micros: 8})
	e := cost.Uniform(4, 1, 2, 0.25)
	const dev = 1
	plan := &fault.Plan{Slowdowns: []fault.Slowdown{{Device: dev, Factor: 2}}}

	base := mustRun(t, &Machine{Truth: e, Seed: 5}, s, 1)
	speedOnly := mustRun(t, &Machine{Truth: e, Seed: 5,
		SpeedFactors: []float64{1, 0.5, 1, 1}}, s, 1)
	faultOnly := mustRun(t, &Machine{Truth: e, Seed: 5, Faults: plan}, s, 1)
	stacked := mustRun(t, &Machine{Truth: e, Seed: 5, Faults: plan,
		SpeedFactors: []float64{1, 0.5, 1, 1}}, s, 1)

	oh := e.LaunchOverhead
	for k, durs := range base.DeviceDurations[dev] {
		if !isCompute(k.Kind) {
			continue
		}
		sp, fa, st := speedOnly.DeviceDurations[dev][k], faultOnly.DeviceDurations[dev][k], stacked.DeviceDurations[dev][k]
		for i, d0 := range durs {
			w := d0 - oh
			if r := (sp[i] - oh) / w; math.Abs(r-2) > 1e-9 {
				t.Fatalf("%v sample %d: speed-only stretch %v, want 2", k, i, r)
			}
			if r := (fa[i] - oh) / w; math.Abs(r-2) > 1e-9 {
				t.Fatalf("%v sample %d: fault-only stretch %v, want 2", k, i, r)
			}
			// The fault multiplies the already-slowed duration (overhead
			// included), exactly as a throttled chip would be measured.
			if want := (oh + w*2) * 2; math.Abs(st[i]-want) > 1e-9 {
				t.Fatalf("%v sample %d: stacked %v, want %v", k, i, st[i], want)
			}
		}
	}
	if stacked.FaultSlowed == 0 {
		t.Error("stacked run reports no fault-slowed instructions")
	}

	again := mustRun(t, &Machine{Truth: e, Seed: 5, Faults: plan,
		SpeedFactors: []float64{1, 0.5, 1, 1}}, s, 1)
	stacked.WatchdogResets, again.WatchdogResets = 0, 0
	if !reflect.DeepEqual(stacked, again) {
		t.Error("stacked speed+fault run is not deterministic across repeats")
	}
}

func isCompute(k pipeline.Kind) bool {
	switch k {
	case pipeline.Forward, pipeline.CkptForward, pipeline.Backward, pipeline.Recompute,
		pipeline.BackwardInput, pipeline.BackwardWeight,
		pipeline.AllReduce, pipeline.OptimizerStep:
		return true
	}
	return false
}
