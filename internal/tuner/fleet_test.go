package tuner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/profile"
	"mario/internal/telemetry"
)

// fleetHarness is an in-process ShardDispatcher backed by real worker
// Tuners: each fleet member is a fresh Tuner with its own memo caches (a
// faithful model of a remote worker, which shares nothing with the
// coordinator). Shards map to members round-robin, and dispatch failures
// can be injected per shard to exercise the local-fallback path.
type fleetHarness struct {
	space   Space
	members []*Tuner
	shards  int
	chunk   int
	// noShare drops the incumbent before evaluating — the benchmarking
	// control that shows what incumbent-bound sharing saves.
	noShare bool

	mu       sync.Mutex
	failures map[int]int // shard -> remaining injected dispatch errors
}

// newHarness builds a harness with nworkers members created by mk.
func newHarness(sp Space, mk func() *Tuner, nworkers, shards, chunk int) *fleetHarness {
	h := &fleetHarness{space: sp, shards: shards, chunk: chunk, failures: map[int]int{}}
	for i := 0; i < nworkers; i++ {
		h.members = append(h.members, mk())
	}
	return h
}

func (h *fleetHarness) Shards() int    { return h.shards }
func (h *fleetHarness) ChunkSize() int { return h.chunk }

func (h *fleetHarness) Dispatch(ctx context.Context, shard int, pts []ShardPoint, inc float64, hasInc bool) ([]ShardOutcome, error) {
	h.mu.Lock()
	if n := h.failures[shard]; n > 0 {
		h.failures[shard] = n - 1
		h.mu.Unlock()
		return nil, errors.New("injected worker failure")
	}
	h.mu.Unlock()
	if h.noShare {
		inc, hasInc = 0, false
	}
	w := h.members[shard%len(h.members)]
	return w.EvalShard(ctx, h.space, pts, inc, hasInc)
}

// runFleet mirrors runSpace but routes the search through a dispatcher and
// also returns the settled fleet counters.
func runFleet(t *testing.T, sp Space, h *fleetHarness, mut func(*Tuner)) (searchRun, FleetStats) {
	t.Helper()
	tn := newTuner()
	tn.Sharder = h
	if mut != nil {
		mut(tn)
	}
	var run searchRun
	tn.Progress = func(c Candidate, best Candidate) {
		run.progress = append(run.progress, fmt.Sprintf("%s|%016x -> %s|%016x",
			c.Label(), math.Float64bits(c.Throughput), best.Label(), math.Float64bits(best.Throughput)))
	}
	best, trace, err := tn.Search(sp)
	if err != nil {
		t.Fatalf("fleet Search(%+v): %v", sp, err)
	}
	run.best = candString(*best)
	for _, c := range trace {
		run.trace = append(run.trace, candString(c))
	}
	run.stats = tn.Stats
	return run, tn.FleetSnapshot()
}

// compareRuns demands byte-identical outputs: stats, best, the full trace
// in order and the Progress callback sequence.
func compareRuns(t *testing.T, name string, got, want searchRun) {
	t.Helper()
	if got.stats != want.stats {
		t.Errorf("%s: stats %+v, want %+v", name, got.stats, want.stats)
	}
	if got.best != want.best {
		t.Errorf("%s: best differs\n got: %s\nwant: %s", name, got.best, want.best)
	}
	if len(got.trace) != len(want.trace) {
		t.Fatalf("%s: trace length %d, want %d", name, len(got.trace), len(want.trace))
	}
	for i := range got.trace {
		if got.trace[i] != want.trace[i] {
			t.Errorf("%s: trace[%d] differs\n got: %s\nwant: %s", name, i, got.trace[i], want.trace[i])
			break
		}
	}
	if len(got.progress) != len(want.progress) {
		t.Fatalf("%s: %d progress callbacks, want %d", name, len(got.progress), len(want.progress))
	}
	for i := range got.progress {
		if got.progress[i] != want.progress[i] {
			t.Errorf("%s: progress[%d] = %q, want %q", name, i, got.progress[i], want.progress[i])
			break
		}
	}
}

// fleetShapes is the shard-protocol test matrix from the PR: workers ×
// shards ∈ {1×1, 1×4, 4×2}, with a chunk small enough that detSpace spans
// several waves.
var fleetShapes = []struct {
	name            string
	workers, shards int
	chunk           int
}{
	{"1x1", 1, 1, 3},
	{"1x4", 1, 4, 2},
	{"4x2", 4, 2, 3},
}

// TestFleetByteIdentity is the tentpole contract: a fleet-distributed
// search emits the byte-identical best candidate, trace, SearchStats and
// Progress sequence as the single-node branch-and-bound search, for every
// fleet shape — on both a plain space and one engineered for memory
// pruning.
func TestFleetByteIdentity(t *testing.T) {
	spaces := []struct {
		name string
		sp   Space
	}{
		{"detSpace", detSpace(1)},
		{"memPressure", memPressureSpace(t)},
		{"hetero", heteroSpace(1)},
	}
	for _, s := range spaces {
		t.Run(s.name, func(t *testing.T) {
			base := runSpace(t, s.sp, nil) // single-node bnb baseline
			if base.stats.Explored == 0 {
				t.Fatal("baseline explored nothing")
			}
			for _, sh := range fleetShapes {
				h := newHarness(s.sp, newTuner, sh.workers, sh.shards, sh.chunk)
				got, fl := runFleet(t, s.sp, h, nil)
				compareRuns(t, sh.name, got, base)
				if fl.Dispatched == 0 || fl.Waves == 0 {
					t.Errorf("%s: nothing dispatched: %+v", sh.name, fl)
				}
				if fl.Fallbacks != 0 || fl.Forced != 0 {
					t.Errorf("%s: healthy fleet reported fallbacks/forced: %+v", sh.name, fl)
				}
			}
		})
	}
}

// TestFleetSpanTreeShapeIndependent: the synthesized span tree (canonical
// JSONL and Chrome exports, tree rendering) is byte-identical for every
// fleet shape, because point spans are built purely from merge outcomes.
func TestFleetSpanTreeShapeIndependent(t *testing.T) {
	sp := detSpace(1)
	trace := func(workers, shards, chunk int) (string, string, string) {
		t.Helper()
		tn := newTuner()
		tn.Sharder = newHarness(sp, newTuner, workers, shards, chunk)
		tracer := telemetry.New("fleet-fingerprint")
		tn.Span = tracer.Root(telemetry.PhaseOptimize, "")
		if _, _, err := tn.Search(sp); err != nil {
			t.Fatalf("fleet Search(%dx%d): %v", workers, shards, err)
		}
		tn.Span.End()
		tr := tracer.Snapshot()
		return string(tr.JSONL()), string(tr.ChromeTrace()), tr.Tree()
	}
	baseJSONL, baseChrome, baseTree := trace(1, 1, 3)
	if baseJSONL == "" {
		t.Fatal("fleet search produced an empty JSONL trace")
	}
	for _, sh := range fleetShapes[1:] {
		jsonl, chrome, tree := trace(sh.workers, sh.shards, sh.chunk)
		if jsonl != baseJSONL {
			t.Errorf("JSONL trace differs between 1x1 and %s:\n--- 1x1\n%s\n--- %s\n%s",
				sh.name, baseJSONL, sh.name, jsonl)
		}
		if chrome != baseChrome {
			t.Errorf("canonical Chrome trace differs between 1x1 and %s", sh.name)
		}
		if tree != baseTree {
			t.Errorf("tree rendering differs between 1x1 and %s:\n--- 1x1\n%s\n--- %s\n%s",
				sh.name, baseTree, sh.name, tree)
		}
	}
}

// TestFleetWorkerFailure kills shards mid-search (every shape loses its
// first dispatch on shard 0, the 4x2 case loses several) and demands the
// byte-identical result: the coordinator's local fallback makes the merged
// search independent of fleet health, and only FleetStats shows the damage.
func TestFleetWorkerFailure(t *testing.T) {
	sp := detSpace(1)
	base := runSpace(t, sp, nil)
	cases := []struct {
		name     string
		shape    int // index into fleetShapes
		failures map[int]int
	}{
		{"first-dispatch-lost", 1, map[int]int{0: 1}},
		{"worker-down-hard", 2, map[int]int{0: 3, 1: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sh := fleetShapes[tc.shape]
			h := newHarness(sp, newTuner, sh.workers, sh.shards, sh.chunk)
			for s, n := range tc.failures {
				h.failures[s] = n
			}
			got, fl := runFleet(t, sp, h, nil)
			compareRuns(t, tc.name, got, base)
			if fl.Fallbacks == 0 {
				t.Errorf("no fallbacks recorded despite injected failures: %+v", fl)
			}
			if fl.Forced != 0 {
				t.Errorf("fallback path forced local re-evaluations: %+v", fl)
			}
		})
	}
}

// TestFleetNoShareByteIdentity: disabling incumbent broadcast (the
// benchmarking control) costs work, never correctness — the merged outputs
// are still byte-identical to the single-node search.
func TestFleetNoShareByteIdentity(t *testing.T) {
	sp := detSpace(1)
	base := runSpace(t, sp, nil)
	h := newHarness(sp, newTuner, 2, 4, 2)
	h.noShare = true
	got, fl := runFleet(t, sp, h, nil)
	compareRuns(t, "no-share", got, base)
	if fl.RemoteSkipped != 0 {
		t.Errorf("no-share fleet still skipped %d points remotely", fl.RemoteSkipped)
	}
}

// TestFleetProtocolViolationForced: a dispatcher that skips points the
// incumbent cannot justify (here: skipping everything) must not corrupt
// the search — the merge re-evaluates unconfirmed skips locally, counts
// them in FleetStats.Forced, and still emits the baseline bytes.
func TestFleetProtocolViolationForced(t *testing.T) {
	sp := detSpace(1)
	base := runSpace(t, sp, nil)
	h := newHarness(sp, newTuner, 1, 2, 3)
	viol := &skipAllDispatcher{h}
	tn := newTuner()
	tn.Sharder = viol
	var run searchRun
	tn.Progress = func(c Candidate, best Candidate) {
		run.progress = append(run.progress, fmt.Sprintf("%s|%016x -> %s|%016x",
			c.Label(), math.Float64bits(c.Throughput), best.Label(), math.Float64bits(best.Throughput)))
	}
	best, trace, err := tn.Search(sp)
	if err != nil {
		t.Fatal(err)
	}
	run.best = candString(*best)
	for _, c := range trace {
		run.trace = append(run.trace, candString(c))
	}
	run.stats = tn.Stats
	compareRuns(t, "skip-all", run, base)
	if fl := tn.FleetSnapshot(); fl.Forced == 0 {
		t.Errorf("protocol violation went unnoticed: %+v", fl)
	}
}

// skipAllDispatcher violates the skip protocol: every point comes back
// ShardSkipped regardless of the incumbent.
type skipAllDispatcher struct{ *fleetHarness }

func (d *skipAllDispatcher) Dispatch(ctx context.Context, shard int, pts []ShardPoint, inc float64, hasInc bool) ([]ShardOutcome, error) {
	out := make([]ShardOutcome, len(pts))
	for i, p := range pts {
		out[i] = ShardOutcome{Idx: p.Idx, Status: ShardSkipped}
	}
	return out, nil
}

// TestFleetIncumbentSharingReduces pins the perf acceptance criterion on
// the paper's 64-device GPT3-13B grid: with incumbent-bound sharing the
// fleet simulates strictly fewer points than the same fleet without it
// (which must evaluate every structurally feasible point), while both
// produce the byte-identical merged outputs of the single-node
// branch-and-bound search. The absolute counts land in EXPERIMENTS.md.
func TestFleetIncumbentSharingReduces(t *testing.T) {
	if testing.Short() {
		t.Skip("large grid; skipped with -short")
	}
	prof := &profile.Profiler{
		Model: cost.GPT3_13B, HW: cost.A100_40G,
		Spec: profile.DefaultMachine, Devices: 4, Iters: 4,
	}
	mk := func() *Tuner { return &Tuner{Prof: prof, MaxRounds: 1} }
	space := Space{
		Devices:      64,
		GlobalBatch:  512,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave, pipeline.SchemeGPipe},
		MicroBatches: []int{1, 2, 4, 8, 16, 32},
		DeviceMem:    cost.A100_40G.MemBytes,
		Workers:      runtime.GOMAXPROCS(0),
	}

	// Single-node bnb baseline.
	baseTn := mk()
	baseBest, _, err := baseTn.Search(space)
	if err != nil {
		t.Fatal(err)
	}
	baseStr := candString(*baseBest)

	run := func(noShare bool) (string, SearchStats, FleetStats) {
		h := newHarness(space, mk, 4, 2, DefaultShardChunk)
		h.noShare = noShare
		tn := mk()
		tn.Sharder = h
		best, _, err := tn.Search(space)
		if err != nil {
			t.Fatal(err)
		}
		return candString(*best), tn.Stats, tn.FleetSnapshot()
	}

	sharedBest, sharedStats, shared := run(false)
	soloBest, soloStats, solo := run(true)

	for _, c := range []struct {
		name string
		best string
		st   SearchStats
	}{{"shared", sharedBest, sharedStats}, {"no-share", soloBest, soloStats}} {
		if c.best != baseStr {
			t.Errorf("%s fleet argmax differs from single-node bnb:\n got: %s\nwant: %s", c.name, c.best, baseStr)
		}
		if c.st != baseTn.Stats {
			t.Errorf("%s fleet stats %+v, want %+v", c.name, c.st, baseTn.Stats)
		}
	}

	evals := func(fl FleetStats) int { return fl.RemoteExplored + fl.Forced }
	t.Logf("single-node bnb explored %d of %d feasible; fleet evaluated %d with sharing (%d skipped remotely), %d without",
		baseTn.Stats.Explored, baseTn.Stats.Explored+baseTn.Stats.BoundPruned+baseTn.Stats.MemPruned,
		evals(shared), shared.RemoteSkipped, evals(solo))
	if shared.Forced != 0 || solo.Forced != 0 {
		t.Errorf("forced local evaluations: shared=%d solo=%d", shared.Forced, solo.Forced)
	}
	if shared.RemoteSkipped == 0 {
		t.Error("incumbent sharing skipped nothing remotely")
	}
	if evals(shared) >= evals(solo) {
		t.Errorf("incumbent sharing did not reduce fleet evaluations: %d with sharing, %d without",
			evals(shared), evals(solo))
	}
	// Without a broadcast incumbent every dispatched point is either
	// evaluated or skipped by a worker's batch-local incumbent — nothing
	// else may drop points.
	if want := baseTn.Stats.Explored + baseTn.Stats.BoundPruned + baseTn.Stats.MemPruned; evals(solo)+solo.RemoteSkipped != want {
		t.Errorf("no-share fleet accounted for %d points (%d evaluated + %d batch-local skips), want %d",
			evals(solo)+solo.RemoteSkipped, evals(solo), solo.RemoteSkipped, want)
	}
}

// TestEvalShardValidation covers the worker-side error paths: an index
// outside the grid and a degenerate space are rejected, and a cancelled
// context aborts the batch.
func TestEvalShardValidation(t *testing.T) {
	tn := newTuner()
	sp := detSpace(1)
	if _, err := tn.EvalShard(context.Background(), sp, []ShardPoint{{Idx: 1 << 20}}, 0, false); err == nil {
		t.Error("out-of-grid index accepted")
	}
	if _, err := tn.EvalShard(context.Background(), Space{}, nil, 0, false); err == nil {
		t.Error("degenerate space accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tn.EvalShard(ctx, sp, []ShardPoint{{Idx: 0}}, 0, false); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled batch returned %v, want context.Canceled", err)
	}
}

// TestShardPointWire pins the wire form: an infinite bound round-trips
// through the Unbounded flag (JSON cannot carry +Inf) and ub() restores it.
func TestShardPointWire(t *testing.T) {
	nd := bnbNode{idx: 7, ub: math.Inf(1), memLB: 42}
	sp := shardPointOf(nd)
	if !sp.Unbounded || sp.UB != 0 {
		t.Errorf("infinite bound encoded as %+v", sp)
	}
	if !math.IsInf(sp.ub(), 1) {
		t.Errorf("ub() = %g, want +Inf", sp.ub())
	}
	fin := shardPointOf(bnbNode{idx: 3, ub: 12.5, memLB: 1, doomed: true})
	if fin.Unbounded || fin.UB != 12.5 || !fin.Doomed {
		t.Errorf("finite bound encoded as %+v", fin)
	}
	if fin.ub() != 12.5 {
		t.Errorf("ub() = %g, want 12.5", fin.ub())
	}
}
