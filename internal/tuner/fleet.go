package tuner

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"mario/internal/sim"
	"mario/internal/telemetry"
)

// This file implements the fleet search strategy: the branch-and-bound
// expansion of bnb.go distributed across a planning fleet. The coordinator
// runs the cheap probe pass once (structural checks, memoized builds,
// admissible bounds), sorts the feasible nodes best-first exactly like
// searchBnB, and then dispatches waves of shard batches through a
// ShardDispatcher — an HTTP fan-out in production (internal/serve), an
// in-process evaluator in tests. Between waves the coordinator broadcasts
// the global incumbent throughput so workers skip shard points the
// incumbent already dooms.
//
// The strategy preserves every determinism contract of the local search:
// the merge loop consumes outcomes in the same sorted order searchBnB
// uses and re-applies the same decide() classification against the
// canonical incumbent, so the best candidate, the trace, the SearchStats
// and the synthesized span tree are byte-identical for every fleet shape
// (workers × shards, including 1×1) and the marshaled plan is
// byte-identical to a single-node run. Worker-side incumbent skips are
// exact for the same reason worker skips are exact in searchBnB: a
// broadcast incumbent is the true throughput of a candidate whose bound
// sorts it strictly before every node it prunes, so the merge loop's own
// incumbent always confirms the skip; the unreachable disagreement case
// falls back to a local evaluation.

// DefaultShardChunk is the number of sorted nodes a shard receives per
// dispatch wave when the dispatcher does not choose its own batch size.
// Small enough that the incumbent refreshes while the search is still
// exploring high-bound nodes, large enough to amortize a dispatch
// round-trip.
const DefaultShardChunk = 8

// Shard outcome statuses (ShardOutcome.Status).
const (
	// ShardExplored marks a fully simulated point; the outcome carries the
	// candidate.
	ShardExplored = "explored"
	// ShardSkipped marks a point the worker declined to simulate because
	// the dispatched incumbent already doomed it (bound below the
	// incumbent, or provably OOM while the incumbent is positive).
	ShardSkipped = "skipped"
	// ShardInfeasible marks a point whose full evaluation failed even
	// though the coordinator's probe passed (a graph-pass error); the
	// merge counts it as a structural prune, as the local strategies do.
	ShardInfeasible = "infeasible"
)

// ShardPoint is one probed, structurally feasible grid point a coordinator
// ships to a worker: the canonical grid index plus the admissible bounds
// the probe pass computed. Bounds travel with the point so workers prune
// against the shared incumbent without re-probing. The type is wire-safe:
// an infinite upper bound (no useful bound) is carried as Unbounded
// rather than +Inf, which JSON cannot encode.
type ShardPoint struct {
	// Idx is the canonical grid index (the point's enumerate position).
	Idx int `json:"idx"`
	// UB is the admissible throughput upper bound (bnbBound); zero with
	// Unbounded set when the bound is infinite.
	UB float64 `json:"ub"`
	// Unbounded marks points whose throughput bound is +Inf.
	Unbounded bool `json:"unbounded,omitempty"`
	// MemLB is the admissible per-device memory lower bound.
	MemLB float64 `json:"mem_lb"`
	// Doomed marks points whose MemLB already exceeds the device budget:
	// their simulated throughput is provably zero.
	Doomed bool `json:"doomed,omitempty"`
}

// shardPointOf converts a probed node into its wire form.
func shardPointOf(nd bnbNode) ShardPoint {
	sp := ShardPoint{Idx: nd.idx, UB: nd.ub, MemLB: nd.memLB, Doomed: nd.doomed}
	if math.IsInf(sp.UB, 1) {
		sp.UB, sp.Unbounded = 0, true
	}
	return sp
}

// ub returns the node-side view of the bound (+Inf when Unbounded).
func (p ShardPoint) ub() float64 {
	if p.Unbounded {
		return math.Inf(1)
	}
	return p.UB
}

// ShardOutcome is a worker's verdict on one dispatched shard point.
type ShardOutcome struct {
	// Idx echoes the point's canonical grid index.
	Idx int `json:"idx"`
	// Status is ShardExplored, ShardSkipped or ShardInfeasible.
	Status string `json:"status"`
	// Cand is the simulated candidate (ShardExplored only). It round-trips
	// byte-stably through the plan JSON codec, so a merged remote candidate
	// marshals identically to a locally computed one.
	Cand *Candidate `json:"cand,omitempty"`
}

// ShardDispatcher fans shard batches out to a planning fleet. Implementations
// must be safe for concurrent Dispatch calls (the coordinator dispatches the
// shards of one wave in parallel). Dispatch errors are not fatal: the
// coordinator evaluates the failed batch locally, so the search result is
// independent of fleet health.
type ShardDispatcher interface {
	// Shards is the number of partitions per wave (usually the worker
	// count); values < 1 mean 1.
	Shards() int
	// ChunkSize is the number of sorted nodes per shard per wave; values
	// < 1 mean DefaultShardChunk.
	ChunkSize() int
	// Dispatch evaluates one shard's batch, in the given order, pruning
	// against the dispatched incumbent (hasIncumbent reports whether one
	// exists yet). It returns one outcome per point, keyed by Idx.
	Dispatch(ctx context.Context, shard int, points []ShardPoint, incumbent float64, hasIncumbent bool) ([]ShardOutcome, error)
}

// FleetStats describes how the most recent fleet search divided its work.
// Unlike SearchStats these counters depend on the fleet shape (more shards
// mean staler incumbents and more remote explorations), so they are kept
// out of the plan JSON — plans stay byte-identical to a single-node run —
// and exported as mario_search_fleet_* series instead.
type FleetStats struct {
	// Waves counts dispatch rounds; Broadcasts the waves that shipped a
	// global incumbent to the workers.
	Waves, Broadcasts int
	// Dispatched counts shard batches handed to the dispatcher and
	// Fallbacks the batches the coordinator evaluated locally after a
	// dispatch error.
	Dispatched, Fallbacks int
	// RemoteExplored, RemoteSkipped and RemoteInfeasible count shard-point
	// outcomes by status. RemoteSkipped is the incumbent-sharing payoff:
	// points a worker never simulated because the broadcast incumbent
	// already doomed them.
	RemoteExplored, RemoteSkipped, RemoteInfeasible int
	// Forced counts skipped outcomes the merge loop could not confirm and
	// re-evaluated locally. Always zero for a dispatcher that follows the
	// skip protocol; the counter exists to make violations visible.
	Forced int
}

// FleetSnapshot returns a consistent copy of the fleet counters; the
// race-safe read while a search is running.
func (t *Tuner) FleetSnapshot() FleetStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.Fleet
}

func (t *Tuner) publishFleet(f FleetStats) {
	t.statsMu.Lock()
	t.Fleet = f
	t.statsMu.Unlock()
}

// EvalShard is the worker half of the fleet protocol: it evaluates one
// dispatched batch in order, skipping points the incumbent dooms and
// advancing a batch-local incumbent as it explores. It touches neither
// SearchStats nor spans — outcome accounting is the coordinator's job, so
// worker results are position-independent. The skip predicate is strictly
// conservative (strict <, positive incumbent for doomed points), which is
// what guarantees the coordinator's merge loop confirms every skip.
func (t *Tuner) EvalShard(ctx context.Context, space Space, points []ShardPoint, incumbent float64, hasIncumbent bool) ([]ShardOutcome, error) {
	space = space.withDefaults()
	if space.Devices <= 0 || space.GlobalBatch <= 0 {
		return nil, fmt.Errorf("tuner: devices (%d) and global batch (%d) must be positive", space.Devices, space.GlobalBatch)
	}
	grid := enumerate(space)
	eng := &sim.Simulator{}
	out := make([]ShardOutcome, 0, len(points))
	inc, hasInc := incumbent, hasIncumbent
	for _, sp := range points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if sp.Idx < 0 || sp.Idx >= len(grid) {
			return nil, fmt.Errorf("tuner: shard point index %d outside grid of %d points", sp.Idx, len(grid))
		}
		if hasInc && ((sp.Doomed && inc > 0) || sp.ub() < inc) {
			out = append(out, ShardOutcome{Idx: sp.Idx, Status: ShardSkipped})
			continue
		}
		pr := t.evalPoint(ctx, space, grid[sp.Idx], nil, eng, telemetry.Span{})
		if pr.err != nil {
			return nil, pr.err
		}
		if !pr.feasible || pr.cand == nil {
			out = append(out, ShardOutcome{Idx: sp.Idx, Status: ShardInfeasible})
			continue
		}
		out = append(out, ShardOutcome{Idx: sp.Idx, Status: ShardExplored, Cand: pr.cand})
		if !hasInc || pr.cand.Throughput > inc {
			inc, hasInc = pr.cand.Throughput, true
		}
	}
	t.Metrics.AddSims(eng.Sims)
	return out, nil
}

// searchFleet is the coordinator strategy. Phase 1 and 2 are searchBnB's:
// probe every point in canonical order, sort feasible nodes best-first.
// Phase 3 walks the sorted nodes in waves of Shards×ChunkSize: within a
// wave, sorted position j belongs to shard j mod Shards, every non-empty
// shard batch is dispatched concurrently with the current incumbent, and
// the outcomes are merged back in sorted order with the same decide()
// classification the local strategies use. Dispatch failures degrade to a
// local evaluation of the lost batch, so the result never depends on
// fleet health — only the FleetStats do.
func (t *Tuner) searchFleet(ctx context.Context, space Space, points []gridPoint, tracer *telemetry.Tracer, search telemetry.Span, stats *SearchStats) (*Candidate, []Candidate, error) {
	d := t.Sharder
	shards := d.Shards()
	if shards < 1 {
		shards = 1
	}
	chunk := d.ChunkSize()
	if chunk < 1 {
		chunk = DefaultShardChunk
	}
	// Note: no fleet-shape attribute on the search span — the span tree is
	// byte-identical for every workers×shards shape, and the shape lives in
	// FleetStats and the mario_search_fleet_* series instead.

	nodes, err := t.probeAll(ctx, space, points, tracer, search, stats)
	if err != nil {
		return nil, nil, err
	}

	var best *Candidate
	bestIdx := -1
	type traceEnt struct {
		idx int
		c   Candidate
	}
	var ents []traceEnt
	var fl FleetStats
	eng := &sim.Simulator{} // local engine for fallback and forced evaluations
	sims0 := eng.Sims
	defer func() {
		t.Metrics.AddSims(eng.Sims - sims0)
		t.publishFleet(fl)
	}()

	// decide duplicates searchBnB's classification (it closes over this
	// search's incumbent).
	decide := func(nd bnbNode) int {
		if best == nil {
			return exploreNode
		}
		if nd.doomed && best.Throughput > 0 {
			return memPruneNode
		}
		if nd.ub < best.Throughput || (nd.ub == best.Throughput && nd.idx > bestIdx) {
			return boundPruneNode
		}
		return exploreNode
	}

	synth := func(nd bnbNode, result string) telemetry.Span {
		ps := tracer.Detached(telemetry.PhasePoint, pointKey(nd.idx, nd.p))
		ps.SetStr("result", result)
		return ps
	}

	// merge folds one node's outcome into the search state, in sorted
	// order. Decisions replay decide() against the canonical incumbent —
	// never against worker-time state — which is what makes the result
	// independent of the fleet shape. Explored points get a synthesized
	// span built purely from the outcome, so the span tree is fleet-shape
	// independent too (fleet point spans carry no build/sim children; the
	// per-phase telemetry lives on the workers).
	merge := func(nd bnbNode, oc ShardOutcome, ok bool) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		switch decide(nd) {
		case memPruneNode:
			stats.MemPruned++
			t.publishStats(*stats)
			if m := t.Metrics; m != nil {
				m.PointsMemPruned.Inc()
			}
			ps := synth(nd, "memory_pruned")
			ps.SetFloat("mem_lb", nd.memLB)
			ps.End()
			ps.AttachTo(search)
			return nil
		case boundPruneNode:
			stats.BoundPruned++
			t.publishStats(*stats)
			if m := t.Metrics; m != nil {
				m.PointsBoundPruned.Inc()
			}
			ps := synth(nd, "bound_pruned")
			ps.SetFloat("ub", nd.ub)
			ps.End()
			ps.AttachTo(search)
			return nil
		}
		var c *Candidate
		switch {
		case ok && oc.Status == ShardExplored && oc.Cand != nil:
			c = oc.Cand
		case ok && oc.Status == ShardInfeasible:
			// The probe passed but the full evaluation failed (a graph-pass
			// error): the local strategies count that as a structural prune,
			// so the fleet does too.
			t.pruneInfeasible(nd.idx, nd.p, tracer, search, stats)
			return nil
		default:
			// A worker skip the incumbent cannot justify, or a missing
			// outcome: evaluate locally so the result stays exact.
			fl.Forced++
			pr := t.evalPoint(ctx, space, nd.p, nil, eng, telemetry.Span{})
			if pr.err != nil {
				return pr.err
			}
			if !pr.feasible || pr.cand == nil {
				t.pruneInfeasible(nd.idx, nd.p, tracer, search, stats)
				return nil
			}
			c = pr.cand
		}
		stats.Explored++
		if c.OOM {
			stats.OOMRejected++
		}
		ents = append(ents, traceEnt{idx: nd.idx, c: *c})
		improved := best == nil || c.Throughput > best.Throughput ||
			(c.Throughput == best.Throughput && nd.idx < bestIdx)
		if improved {
			cc := *c
			best = &cc
			bestIdx = nd.idx
			stats.Improved++
		}
		t.publishStats(*stats)
		if m := t.Metrics; m != nil {
			m.PointsExplored.Inc()
			if c.OOM {
				m.PointsOOM.Inc()
			}
			if improved {
				m.PointsImproved.Inc()
			}
		}
		ps := synth(nd, "explored")
		if c.OOM {
			ps.SetStr("result", "oom")
		}
		ps.SetFloat("throughput", c.Throughput)
		if improved {
			ps.SetBool("improved", true)
		}
		ps.End()
		ps.AttachTo(search)
		if t.Progress != nil {
			t.Progress(*c, *best)
		}
		return nil
	}

	stride := shards * chunk
	for start := 0; start < len(nodes); start += stride {
		end := start + stride
		if end > len(nodes) {
			end = len(nodes)
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		inc, hasInc := 0.0, false
		if best != nil {
			inc, hasInc = best.Throughput, true
		}
		fl.Waves++
		if hasInc {
			fl.Broadcasts++
		}
		batches := make([][]ShardPoint, shards)
		for j := start; j < end; j++ {
			s := (j - start) % shards
			batches[s] = append(batches[s], shardPointOf(nodes[j]))
		}
		results := make([][]ShardOutcome, shards)
		errs := make([]error, shards)
		var wg sync.WaitGroup
		for s := range batches {
			if len(batches[s]) == 0 {
				continue
			}
			fl.Dispatched++
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				results[s], errs[s] = d.Dispatch(ctx, s, batches[s], inc, hasInc)
			}(s)
		}
		wg.Wait()
		byIdx := make(map[int]ShardOutcome, end-start)
		for s := range batches {
			if len(batches[s]) == 0 {
				continue
			}
			ocs := results[s]
			if errs[s] != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, nil, cerr
				}
				// The shard is lost (worker down, wire error): evaluate the
				// batch locally with the same incumbent, so the merged result
				// is the one a healthy fleet would have produced.
				fl.Fallbacks++
				var ferr error
				ocs, ferr = t.EvalShard(ctx, space, batches[s], inc, hasInc)
				if ferr != nil {
					return nil, nil, ferr
				}
			}
			for _, oc := range ocs {
				switch oc.Status {
				case ShardExplored:
					fl.RemoteExplored++
				case ShardSkipped:
					fl.RemoteSkipped++
				case ShardInfeasible:
					fl.RemoteInfeasible++
				}
				byIdx[oc.Idx] = oc
			}
		}
		t.publishFleet(fl)
		for j := start; j < end; j++ {
			oc, ok := byIdx[nodes[j].idx]
			if err := merge(nodes[j], oc, ok); err != nil {
				return nil, nil, err
			}
		}
	}

	if m := t.Metrics; m != nil {
		m.FleetWaves.Add(int64(fl.Waves))
		m.FleetBroadcasts.Add(int64(fl.Broadcasts))
		m.FleetDispatched.Add(int64(fl.Dispatched))
		m.FleetFallbacks.Add(int64(fl.Fallbacks))
		m.FleetRemoteExplored.Add(int64(fl.RemoteExplored))
		m.FleetRemoteSkipped.Add(int64(fl.RemoteSkipped))
		m.FleetRemoteInfeasible.Add(int64(fl.RemoteInfeasible))
		m.FleetForced.Add(int64(fl.Forced))
	}

	sort.Slice(ents, func(a, b int) bool { return ents[a].idx < ents[b].idx })
	var trace []Candidate
	if len(ents) > 0 {
		trace = make([]Candidate, len(ents))
		for i := range ents {
			trace[i] = ents[i].c
		}
	}
	return best, trace, nil
}
