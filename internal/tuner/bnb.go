package tuner

import (
	"context"
	"math"
	"sort"
	"sync"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/sim"
	"mario/internal/telemetry"
)

// This file implements the branch-and-bound search strategy (the default):
// instead of walking the grid in canonical order and pruning only against the
// canonical best-so-far, it probes every point cheaply first — structural
// checks, memoized schedule build, a tightened admissible throughput upper
// bound, and an admissible memory lower bound — and then expands the feasible
// points in best-first order (highest bound first, provably-OOM points last).
// The best candidates surface early, so the bound prune fires on most of the
// remaining grid, and points whose memory lower bound already exceeds the
// device budget are skipped entirely once any positive-throughput incumbent
// exists (their simulated throughput is provably zero under Equation 1's OOM
// penalty).
//
// The strategy is exact: it returns the byte-identical best candidate the
// grid walk returns, with the same canonical tie-break (highest throughput,
// earliest grid index among ties). The equivalence is pinned by differential
// tests against searchGrid with Space.NoPrune. Only the exploration order —
// and with it the subset of points that get simulated, the trace contents and
// the ordering-variant stats counters — differs; the ordering-invariant
// digest (SearchStats.invariant) is preserved.

// bnbNode is one probed, structurally feasible grid point awaiting
// expansion.
type bnbNode struct {
	// idx is the point's canonical grid index (its enumerate position).
	idx int
	p   gridPoint
	// ub is the admissible throughput upper bound from bnbBound; the true
	// simulated throughput of the point can never exceed it.
	ub float64
	// memLB is the admissible per-device memory lower bound from
	// memLowerBound; the true simulated peak can never be below it.
	memLB float64
	// doomed marks points whose memLB already exceeds Space.DeviceMem:
	// their simulation is guaranteed OOM, hence zero throughput.
	doomed bool
}

// effUB is the expansion priority: doomed points sort last (their true
// throughput is zero regardless of ub), everything else by bound.
func (n bnbNode) effUB() float64 {
	if n.doomed {
		return 0
	}
	return n.ub
}

// Merge-time outcomes of a bnb node.
const (
	exploreNode = iota
	memPruneNode
	boundPruneNode
)

// probePoint runs the cheap prefix of evalPoint — the structural feasibility
// checks, the memoized schedule build and the estimator fit — and computes
// the branch-and-bound bounds. It reports ok=false for structurally
// infeasible points (the same set evalPoint rejects: indivisible batch,
// scheme constraints, too few layers). It records no telemetry; the caller
// synthesizes the canonical spans.
func (t *Tuner) probePoint(space Space, p gridPoint) (nd bnbNode, ok bool) {
	nd = bnbNode{p: p, ub: math.Inf(1)}
	if space.GlobalBatch%(p.mbs*p.dp) != 0 {
		return nd, false
	}
	micros := space.GlobalBatch / (p.mbs * p.dp)
	if micros < 1 {
		return nd, false
	}
	stages := p.pp
	if p.scheme == pipeline.SchemeInterleave {
		stages = p.pp * space.Chunks
	}
	if t.Prof.Model.Layers < stages {
		return nd, false
	}
	sched, err := t.buildFor(space, p, micros)
	if err != nil {
		return nd, false
	}
	est, _, err := t.estimatorFor(space, p, sched, stages)
	if err != nil {
		return nd, false
	}
	nd.ub = t.bnbBound(sched, est, p)
	nd.memLB = memLowerBound(sched, est)
	nd.doomed = space.DeviceMem > 0 && nd.memLB > space.DeviceMem
	return nd, true
}

// bnbBound returns an admissible throughput upper bound for the point,
// tighter than upperBound: the makespan lower bound is the maximum of
//
//   - the busiest device's serial occupancy over the built list, where every
//     instruction contributes at least its launch overhead and compute
//     instructions their full latency (forwards, backwards — split-base
//     schemes their B/W halves at the simulator's exact durations — the
//     cool-down all-reduce and optimizer step). Every transformation the tuner may
//     apply afterwards only adds device work (checkpointing inserts
//     recomputes; split backward splits one backward into two halves whose
//     durations sum to more than the original; prepose only reorders; no
//     pass ever deletes a communication, all-reduce or optimizer
//     instruction), and
//
//   - the single-micro dependency chain: one micro-batch must traverse every
//     stage's forward, then every stage's backward (only the input-gradient
//     fraction when the split-backward pass may defer the weight half), plus
//     one launch-overhead + transfer latency per device-crossing stage
//     boundary in each direction (the simulator's eager sends deliver no
//     earlier than send start + overhead + transfer), plus the cool-down
//     launch overheads and optimizer step that follow the final backward on
//     its device. Multi-part placements take the cheapest part's crossing
//     count, which lower-bounds whichever part the micro actually rides.
func (t *Tuner) bnbBound(sched *pipeline.Schedule, est *cost.Estimator, p gridPoint) float64 {
	lo := est.LaunchOverhead
	var lb float64
	var stagesBuf []int
	for d, list := range sched.Lists {
		// Per-rank compute scaling, bit-exact with the simulator: SlowOf is
		// exactly 1 on homogeneous estimators, and the scaled terms below use
		// the same expressions as sim.ComputeBase and the simulator's
		// all-reduce duration, so the bound stays admissible on heterogeneous
		// clusters without any slack.
		slow := est.SlowOf(d)
		var busy float64
		for _, in := range list {
			switch in.Kind {
			case pipeline.Forward, pipeline.CkptForward:
				busy += lo + est.FwTime[in.Stage]*slow
			case pipeline.Backward:
				busy += lo + est.BwTime[in.Stage]*slow
			case pipeline.BackwardInput:
				busy += lo + est.BwTime[in.Stage]*est.BwSplitRatio*slow
			case pipeline.BackwardWeight:
				busy += lo + est.BwTime[in.Stage]*(1-est.BwSplitRatio)*slow
			case pipeline.SendAct, pipeline.RecvAct, pipeline.SendGrad, pipeline.RecvGrad:
				busy += lo
			case pipeline.AllReduce:
				stagesBuf = appendPlacementStages(stagesBuf[:0], sched.Placement, d)
				busy += lo + est.AllReduceTime(p.dp, stagesBuf)*slow
			case pipeline.OptimizerStep:
				busy += lo + est.OptTime*slow
			}
		}
		if busy > lb {
			lb = busy
		}
	}
	if chain := t.chainBound(sched, est, p); chain > lb {
		lb = chain
	}
	if lb <= 0 {
		return math.Inf(1)
	}
	samples := float64(sched.Micros * p.mbs * p.dp)
	return samples / lb * t.dpEff(p.dp)
}

// chainBound is the single-micro dependency-chain half of bnbBound.
func (t *Tuner) chainBound(sched *pipeline.Schedule, est *cost.Estimator, p gridPoint) float64 {
	lo := est.LaunchOverhead
	S := sched.NumStages()
	// The chain only needs the input-gradient half of each backward when the
	// weight half can be deferred off the critical path: on split-base
	// schemes (ZB-H1, DualPipe-D) always, otherwise when the split-backward
	// pass may rewrite the (checkpointed) candidate. Using the full backward
	// there would overestimate the lower bound and make the prune
	// inadmissible.
	r := 1.0
	if p.scheme.SplitsBackward() || (t.SplitBackward && p.ckpt) {
		r = est.BwSplitRatio
		if r < 0 {
			r = 0
		}
		if r > 1 {
			r = 1
		}
	}
	pl := sched.Placement
	// Per-stage compute scaling: the micro rides some part, so the cheapest
	// part's slowdown lower-bounds whichever rank actually runs the stage
	// (exactly 1 on homogeneous estimators, keeping the legacy bound
	// bit-identical).
	minSlow := func(st int) float64 {
		mn := est.SlowOf(stageDevice(pl, 0, st))
		for part := 1; part < pl.NumParts(); part++ {
			if s := est.SlowOf(stageDevice(pl, part, st)); s < mn {
				mn = s
			}
		}
		return mn
	}
	var chain float64
	for st := 0; st < S; st++ {
		sl := minSlow(st)
		chain += (lo + est.FwTime[st]*sl) + (lo + r*est.BwTime[st]*sl)
	}
	actHop := lo + est.CommTime(est.ActP2PBytes)
	gradHop := lo + est.CommTime(est.GradP2PBytes)
	minComm := math.Inf(1)
	for part := 0; part < pl.NumParts(); part++ {
		crossings := 0
		for st := 0; st+1 < S; st++ {
			if stageDevice(pl, part, st) != stageDevice(pl, part, st+1) {
				crossings++
			}
		}
		if c := float64(crossings) * (actHop + gradHop); c < minComm {
			minComm = c
		}
	}
	if !math.IsInf(minComm, 1) {
		chain += minComm
	}
	// After the chain's final backward, its device still runs the cool-down
	// AllReduce (payload lower-bounded at zero) and OptimizerStep. The
	// optimizer runs on whichever rank finishes the chain, so the fastest
	// rank's slowdown keeps the term admissible.
	optSlow := est.SlowOf(0)
	for d := 1; d < len(sched.Lists); d++ {
		if s := est.SlowOf(d); s < optSlow {
			optSlow = s
		}
	}
	chain += 2*lo + est.OptTime*optSlow
	return chain
}

// stageDevice resolves the device owning a stage along one partition's
// chain, resolving interleaved chunk ids from the stage (a micro-batch
// changes partition at chunk boundaries there).
func stageDevice(pl pipeline.Placement, part, st int) int {
	if ip, ok := pl.(pipeline.InterleavedPlacement); ok {
		return pl.Device(ip.PartOfStage(st), st)
	}
	return pl.Device(part, st)
}

// appendPlacementStages appends the distinct stages whose weights the device
// holds (the sim package's deviceStages, replicated for bound computation).
func appendPlacementStages(out []int, pl pipeline.Placement, dev int) []int {
	for st := 0; st < pl.NumStages(); st++ {
		for p := 0; p < pl.NumParts(); p++ {
			if pl.Device(p, st) == dev {
				out = append(out, st)
				break
			}
		}
	}
	return out
}

// memLowerBound returns an admissible lower bound on the worst device's peak
// memory: static memory (framework + owned training state) plus the
// smallest allocation the device's first forward-like instruction can make
// (the smaller of the full and stashed footprint over its stages). Memory
// simulation starts at the static level, nothing releases below it before
// the first forward, and no graph pass removes every forward from a device,
// so the true simulated peak can never be below the bound.
func memLowerBound(sched *pipeline.Schedule, est *cost.Estimator) float64 {
	var worst float64
	var stagesBuf []int
	for d := range sched.Lists {
		stagesBuf = appendPlacementStages(stagesBuf[:0], sched.Placement, d)
		static := est.FrameworkMem
		first := math.Inf(1)
		for _, st := range stagesBuf {
			static += est.WeightBytes[st]
			a := est.ActFull[st]
			if est.ActStash[st] < a {
				a = est.ActStash[st]
			}
			if a < first {
				first = a
			}
		}
		if math.IsInf(first, 1) {
			first = 0
		}
		if v := static + first; v > worst {
			worst = v
		}
	}
	return worst
}

// pruneInfeasible records one structurally infeasible grid point: the
// stats/metrics counters plus the canonical prune span. Every search
// strategy (grid merge insurance, bnb probe and merge, fleet merge) funnels
// structural prunes through it so the telemetry is strategy-independent.
func (t *Tuner) pruneInfeasible(idx int, p gridPoint, tracer *telemetry.Tracer, search telemetry.Span, stats *SearchStats) {
	stats.Pruned++
	t.publishStats(*stats)
	if m := t.Metrics; m != nil {
		m.PointsPruned.Inc()
	}
	ps := tracer.Detached(telemetry.PhasePoint, pointKey(idx, p))
	ps.SetStr("result", "infeasible")
	ps.End()
	ps.AttachTo(search)
}

// probeAll runs the branch-and-bound probe pass: every grid point is probed
// sequentially in canonical order (attaching the structural-prune spans
// exactly as the grid walk would), and the feasible nodes come back sorted
// best-first — descending bound, canonical index among ties, provably-OOM
// points last. Both the local bnb strategy and the fleet coordinator start
// here, which is what keeps their probe telemetry and expansion order
// identical.
func (t *Tuner) probeAll(ctx context.Context, space Space, points []gridPoint, tracer *telemetry.Tracer, search telemetry.Span, stats *SearchStats) ([]bnbNode, error) {
	nodes := make([]bnbNode, 0, len(points))
	for i, p := range points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nd, ok := t.probePoint(space, p)
		if !ok {
			t.pruneInfeasible(i, p, tracer, search, stats)
			continue
		}
		nd.idx = i
		nodes = append(nodes, nd)
	}
	sort.Slice(nodes, func(a, b int) bool {
		ua, ub := nodes[a].effUB(), nodes[b].effUB()
		if ua != ub {
			return ua > ub
		}
		return nodes[a].idx < nodes[b].idx
	})
	return nodes, nil
}

// searchBnB is the branch-and-bound strategy. Phase 1 and 2 are probeAll:
// probe every point in canonical order, sort the feasible nodes best-first.
// Phase 3 expands the sorted nodes through the worker pool and
// merges results in sorted order, pruning against the incumbent with the
// canonical tie-break, so the returned best candidate is byte-identical to
// the grid walk's for every worker count.
//
// Worker-side skips are sound for the same reason as in the grid walk:
// mergedBest only grows and never exceeds the merge loop's incumbent, so any
// bound or doom the worker observed still holds when the merge loop decides
// the node. Prune spans are always synthesized at merge time (a speculative
// worker evaluation that lost the race is discarded wholesale), so the
// canonical telemetry never depends on scheduling.
func (t *Tuner) searchBnB(ctx context.Context, space Space, points []gridPoint, tracer *telemetry.Tracer, search telemetry.Span, stats *SearchStats) (*Candidate, []Candidate, error) {
	pruneInfeasible := func(idx int, p gridPoint) {
		t.pruneInfeasible(idx, p, tracer, search, stats)
	}

	nodes, err := t.probeAll(ctx, space, points, tracer, search, stats)
	if err != nil {
		return nil, nil, err
	}

	var best *Candidate
	bestIdx := -1
	mb := &mergedBest{}
	type traceEnt struct {
		idx int
		c   Candidate
	}
	var ents []traceEnt

	// decide classifies a node against the incumbent. Runs on the merge
	// goroutine only.
	decide := func(nd bnbNode) int {
		if best == nil {
			return exploreNode
		}
		if nd.doomed && best.Throughput > 0 {
			return memPruneNode
		}
		// A node whose bound cannot beat the incumbent — or can at most tie
		// it from a later canonical index, losing the tie-break — never
		// changes the result.
		if nd.ub < best.Throughput || (nd.ub == best.Throughput && nd.idx > bestIdx) {
			return boundPruneNode
		}
		return exploreNode
	}

	synthPrune := func(nd bnbNode, result string) telemetry.Span {
		ps := tracer.Detached(telemetry.PhasePoint, pointKey(nd.idx, nd.p))
		ps.SetStr("result", result)
		return ps
	}

	merge := func(nd bnbNode, pr pointResult) error {
		sp := pr.span
		// Workers that skipped every remaining node (the incumbent already
		// dominates them) never observe a cancellation, so the merge loop
		// checks it directly: a cancelled search must abort, not complete.
		if cerr := ctx.Err(); cerr != nil {
			sp.Discard()
			return cerr
		}
		if pr.err != nil {
			if cerr := ctx.Err(); cerr != nil {
				sp.Discard()
				return cerr
			}
			// Stale cancellation from a memo entry another (cancelled) search
			// computed: drop it and fall through as a skip; the explore path
			// below re-evaluates under our live context.
			sp.Discard()
			sp = telemetry.Span{}
			pr = pointResult{feasible: true, skipped: true}
		}
		if !pr.feasible {
			// The probe's structural prefix passed but the full evaluation
			// still failed (a graph-pass error): the grid walk counts that as
			// a structural prune, so the bnb path does too.
			sp.Discard()
			pruneInfeasible(nd.idx, nd.p)
			return nil
		}
		switch decide(nd) {
		case memPruneNode:
			sp.Discard()
			stats.MemPruned++
			t.publishStats(*stats)
			if m := t.Metrics; m != nil {
				m.PointsMemPruned.Inc()
			}
			ps := synthPrune(nd, "memory_pruned")
			ps.SetFloat("mem_lb", nd.memLB)
			ps.End()
			ps.AttachTo(search)
			return nil
		case boundPruneNode:
			sp.Discard()
			stats.BoundPruned++
			t.publishStats(*stats)
			if m := t.Metrics; m != nil {
				m.PointsBoundPruned.Inc()
			}
			ps := synthPrune(nd, "bound_pruned")
			ps.SetFloat("ub", nd.ub)
			ps.End()
			ps.AttachTo(search)
			return nil
		}
		c := pr.cand
		if c == nil {
			// The worker skipped but the incumbent cannot justify the prune
			// (e.g. a bound tie from an earlier canonical index): evaluate
			// inline so the result stays exact.
			sp.Discard()
			forced := t.evalTraced(ctx, space, nd.idx, nd.p, nil, nil, tracer)
			sp = forced.span
			if forced.err != nil {
				sp.Discard()
				return forced.err
			}
			c = forced.cand
			if c == nil {
				sp.Discard()
				pruneInfeasible(nd.idx, nd.p)
				return nil
			}
		}
		stats.Explored++
		if c.OOM {
			stats.OOMRejected++
		}
		ents = append(ents, traceEnt{idx: nd.idx, c: *c})
		improved := best == nil || c.Throughput > best.Throughput ||
			(c.Throughput == best.Throughput && nd.idx < bestIdx)
		if improved {
			cc := *c
			best = &cc
			bestIdx = nd.idx
			stats.Improved++
			mb.store(best.Throughput)
		}
		t.publishStats(*stats)
		if m := t.Metrics; m != nil {
			m.PointsExplored.Inc()
			if c.OOM {
				m.PointsOOM.Inc()
			}
			if improved {
				m.PointsImproved.Inc()
			}
		}
		if c.OOM {
			sp.SetStr("result", "oom")
		} else {
			sp.SetStr("result", "explored")
		}
		sp.SetFloat("throughput", c.Throughput)
		if improved {
			sp.SetBool("improved", true)
		}
		sp.AttachTo(search)
		if t.Progress != nil {
			t.Progress(*c, *best)
		}
		return nil
	}

	var searchErr error
	if space.Workers <= 1 || len(nodes) <= 1 {
		eng := &sim.Simulator{}
		sims0 := eng.Sims
		for _, nd := range nodes {
			if err := ctx.Err(); err != nil {
				searchErr = err
				break
			}
			pr := pointResult{feasible: true, skipped: true}
			if decide(nd) == exploreNode {
				pr = t.evalTraced(ctx, space, nd.idx, nd.p, mb, eng, tracer)
			}
			if err := merge(nd, pr); err != nil {
				searchErr = err
				break
			}
		}
		t.Metrics.AddSims(eng.Sims - sims0)
	} else {
		workers := space.Workers
		if workers > len(nodes) {
			workers = len(nodes)
		}
		results := make([]pointResult, len(nodes))
		ready := make([]chan struct{}, len(nodes))
		for i := range ready {
			ready[i] = make(chan struct{})
		}
		jobs := make(chan int, len(nodes))
		for i := range nodes {
			jobs <- i
		}
		close(jobs)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng := &sim.Simulator{} // per-worker engine: a Simulator is not goroutine-safe
				for j := range jobs {
					if err := ctx.Err(); err != nil {
						results[j] = pointResult{err: err}
						close(ready[j])
						continue
					}
					nd := nodes[j]
					if v, ok := mb.load(); ok && (nd.ub < v || (nd.doomed && v > 0)) {
						// mergedBest only grows, so the merge loop's own
						// decide() is guaranteed to confirm this skip.
						results[j] = pointResult{feasible: true, skipped: true}
						close(ready[j])
						continue
					}
					results[j] = t.evalTraced(ctx, space, nd.idx, nd.p, mb, eng, tracer)
					close(ready[j])
				}
				t.Metrics.AddSims(eng.Sims)
			}()
		}
		for j := range nodes {
			<-ready[j]
			if searchErr == nil {
				searchErr = merge(nodes[j], results[j])
			}
		}
		wg.Wait()
	}

	sort.Slice(ents, func(a, b int) bool { return ents[a].idx < ents[b].idx })
	var trace []Candidate
	if len(ents) > 0 {
		trace = make([]Candidate, len(ents))
		for i := range ents {
			trace[i] = ents[i].c
		}
	}
	return best, trace, searchErr
}
