package tuner

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mario/internal/fault"
)

// searchSmall runs a tiny search and returns (tuner, trace).
func searchSmall(t *testing.T) (*Tuner, []Candidate) {
	t.Helper()
	tn := newTuner()
	_, trace, err := tn.Search(Space{
		Devices:      4,
		GlobalBatch:  16,
		MicroBatches: []int{2},
		MinPP:        4,
		DeviceMem:    0,
		NoPrune:      true, // keep every candidate in the trace
		Workers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tn, trace
}

func TestRobustnessReScoresTopK(t *testing.T) {
	tn, trace := searchSmall(t)
	rep, err := Robustness(tn.Prof, trace, RobustnessOpts{TopK: 3, Iters: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 || len(rep.Rows) > 3 {
		t.Fatalf("got %d rows, want 1..3", len(rep.Rows))
	}
	if len(rep.Plans) != 3 {
		t.Fatalf("default ensemble has %d plans, want 3", len(rep.Plans))
	}
	ranked := Rank(trace)
	for i, row := range rep.Rows {
		if row.Cand.Label() != ranked[i].Label() {
			t.Errorf("row %d is %s, want rank order %s", i, row.Cand.Label(), ranked[i].Label())
		}
		if row.Healthy <= 0 {
			t.Errorf("row %s: healthy throughput %v", row.Cand.Label(), row.Healthy)
		}
		if row.Slack <= 0 || row.Slack >= 1 {
			t.Errorf("row %s: slack %v outside (0,1)", row.Cand.Label(), row.Slack)
		}
		if len(row.Outcomes) != len(rep.Plans) {
			t.Fatalf("row %s: %d outcomes, want %d", row.Cand.Label(), len(row.Outcomes), len(rep.Plans))
		}
		var mean float64
		worst := 1.0
		for _, o := range row.Outcomes {
			if o.Err != "" {
				t.Errorf("row %s plan %s failed: %s", row.Cand.Label(), o.Plan, o.Err)
				continue
			}
			if o.Retention <= 0 || o.Retention > 1.05 {
				t.Errorf("row %s plan %s: retention %v implausible", row.Cand.Label(), o.Plan, o.Retention)
			}
			mean += o.Retention
			if o.Retention < worst {
				worst = o.Retention
			}
		}
		mean /= float64(len(row.Outcomes))
		if math.Abs(mean-row.MeanRetention) > 1e-12 || worst != row.WorstRetention {
			t.Errorf("row %s: aggregates %v/%v, recomputed %v/%v",
				row.Cand.Label(), row.MeanRetention, row.WorstRetention, mean, worst)
		}
		// The straggler plan slows a device down, so retention must dip
		// measurably below 1 on at least that plan.
		if row.WorstRetention >= 0.999 {
			t.Errorf("row %s: worst retention %v shows no degradation", row.Cand.Label(), row.WorstRetention)
		}
	}
}

func TestRobustnessGainSurvivalPairs(t *testing.T) {
	tn, trace := searchSmall(t)
	// The trace contains base and mario variants of the same V-4-2 point, so
	// with TopK covering the whole trace the pairing must appear.
	rep, err := Robustness(tn.Prof, trace, RobustnessOpts{TopK: len(trace), Iters: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Gains) == 0 {
		t.Fatal("no (base, mario) pair found in the trace")
	}
	for _, g := range rep.Gains {
		if g.Config == "" {
			t.Error("gain row with empty config label")
		}
	}
	if !strings.Contains(rep.Format(), "checkpoint-gain survival") {
		t.Error("Format omits the gain-survival table")
	}
}

func TestRobustnessDeterministic(t *testing.T) {
	tn, trace := searchSmall(t)
	opts := RobustnessOpts{TopK: 2, Iters: 2, Seed: 9}
	a, err := Robustness(tn.Prof, trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Robustness(tn.Prof, trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Error("repeated robustness runs differ")
	}
	if !reflect.DeepEqual(a.Plans, b.Plans) {
		t.Errorf("plan lists differ: %v vs %v", a.Plans, b.Plans)
	}
}

func TestRobustnessCustomEnsembleAndFailure(t *testing.T) {
	tn, trace := searchSmall(t)
	ensemble := []fault.Plan{
		{Name: "doomed", Seed: 1, MaxRetries: 1,
			Links: []fault.LinkFault{{From: -1, To: -1, DropProb: 0.999999999}}},
	}
	rep, err := Robustness(tn.Prof, trace, RobustnessOpts{TopK: 1, Iters: 1, Ensemble: ensemble})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Rows[0].Outcomes[0]
	if out.Err == "" {
		t.Fatal("near-certain drops should fail the run with a link failure")
	}
	if out.Retention != 0 || rep.Rows[0].WorstRetention != 0 {
		t.Errorf("failed run should count as zero retention, got %v", out.Retention)
	}
	if !strings.Contains(rep.Format(), "FAILED") {
		t.Error("Format should mark the failed run")
	}
}
