package tuner

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"mario/internal/cluster"
	"mario/internal/fault"
	"mario/internal/place"
	"mario/internal/profile"
	"mario/internal/telemetry"
)

// PlanOutcome is one schedule's measured behaviour under one fault plan.
type PlanOutcome struct {
	// Plan is the fault plan's name.
	Plan string
	// Throughput and IterTime are the measured values under the plan.
	Throughput, IterTime float64
	// Retention is the faulted throughput as a fraction of the schedule's
	// healthy measured throughput (1 = the plan cost nothing).
	Retention float64
	// FaultSlowed, FaultDrops and FaultStall echo the run's fault summary.
	FaultSlowed, FaultDrops int
	FaultStall              float64
	// Err is non-empty when the faulted run failed outright (e.g. a link
	// exhausted its retry budget); Throughput and Retention are then zero.
	Err string
}

// RobustnessRow re-scores one candidate schedule under the fault ensemble.
type RobustnessRow struct {
	// Cand is the schedule being stressed (as ranked by the tuner).
	Cand Candidate
	// Healthy and HealthyIter are the measured throughput and iteration time
	// of the fault-free run the retentions are normalised against.
	Healthy, HealthyIter float64
	// Slack is the schedule's mean per-device bubble ratio in the healthy
	// prediction — the idle fraction Mario hides recomputation in. Schedules
	// with less slack have less room to absorb degradation.
	Slack float64
	// Outcomes holds one entry per ensemble plan, in ensemble order.
	Outcomes []PlanOutcome
	// MeanRetention and WorstRetention aggregate Outcomes (failed runs count
	// as zero retention).
	MeanRetention, WorstRetention float64
}

// GainSurvival pairs a checkpointed (mario) candidate with its base
// counterpart — same scheme, PP and micro-batch — and reports how much of the
// checkpointing gain survives the fault ensemble.
type GainSurvival struct {
	// Config labels the paired configuration (scheme-pp-mbs).
	Config string
	// HealthyGain is ckpt/base − 1 on the healthy measured runs.
	HealthyGain float64
	// FaultedGain is the same ratio averaged over the ensemble's faulted
	// measured runs.
	FaultedGain float64
	// Survival is FaultedGain / HealthyGain (1 = the gain is fault-proof;
	// values can exceed 1 when faults hurt the base schedule more). It is 0
	// when the healthy gain itself is ≤ 0.
	Survival float64
}

// RobustnessReport is the result of re-scoring the tuner's top-K schedules
// under a fault ensemble.
type RobustnessReport struct {
	// Plans names the ensemble, in evaluation order.
	Plans []string
	// Rows holds one entry per evaluated candidate, in rank order.
	Rows []RobustnessRow
	// Gains holds the checkpoint-gain survival for every (base, mario) pair
	// present among the evaluated candidates.
	Gains []GainSurvival
}

// RobustnessOpts configures Robustness.
type RobustnessOpts struct {
	// TopK bounds how many trace candidates (by Rank order) are re-scored;
	// 0 means 4.
	TopK int
	// Iters is the measured iteration count per run; 0 means 2.
	Iters int
	// TP is the tensor-parallel degree the schedules were tuned for; 0
	// means 1.
	TP int
	// Ensemble is the fault-plan ensemble; nil uses fault.DefaultEnsemble
	// with Seed.
	Ensemble []fault.Plan
	// Seed seeds the default ensemble when Ensemble is nil.
	Seed uint64
	// Span, when live, parents the re-scoring's telemetry: one PhaseRobust
	// span with a PhaseCandidate child per evaluated schedule and a
	// PhaseFault grandchild per ensemble plan. The re-scoring is
	// sequential, so these spans need no canonical reordering. The zero
	// Span disables tracing at zero cost.
	Span telemetry.Span
	// Metrics, when non-nil, counts the measured runs (healthy and
	// faulted).
	Metrics *telemetry.SearchMetrics
}

// Robustness executes the top-K schedules of a tuning trace on the emulated
// cluster — once healthy, then once per ensemble fault plan — and reports how
// much measured throughput each schedule retains under degradation, plus how
// much of Mario's checkpointing gain survives for every (base, mario) pair in
// the selection. Runs are deterministic: the same profiler, trace and ensemble
// produce an identical report.
//
// Robustness never aborts early; use RobustnessContext to bound or cancel
// the re-scoring.
func Robustness(prof *profile.Profiler, trace []Candidate, opts RobustnessOpts) (*RobustnessReport, error) {
	return RobustnessContext(context.Background(), prof, trace, opts)
}

// RobustnessContext is Robustness with cancellation: ctx is checked before
// every measured run (each candidate's healthy run and each ensemble plan),
// and a cancelled context aborts the call with ctx's error instead of a
// partial report.
func RobustnessContext(ctx context.Context, prof *profile.Profiler, trace []Candidate, opts RobustnessOpts) (*RobustnessReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("tuner: robustness needs a profiler")
	}
	topK := opts.TopK
	if topK <= 0 {
		topK = 4
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = 2
	}
	tp := opts.TP
	if tp <= 0 {
		tp = 1
	}

	var cands []Candidate
	for _, c := range Rank(trace) {
		if c.Schedule == nil || c.OOM || c.Throughput <= 0 {
			continue
		}
		cands = append(cands, c)
		if len(cands) >= topK {
			break
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("tuner: no feasible candidates to re-score")
	}

	ensemble := opts.Ensemble
	if ensemble == nil {
		ensemble = fault.DefaultEnsemble(cands[0].Schedule.NumDevices(), opts.Seed)
	}

	rep := &RobustnessReport{}
	for i := range ensemble {
		name := ensemble[i].Name
		if name == "" {
			name = fmt.Sprintf("plan-%d", i)
		}
		rep.Plans = append(rep.Plans, name)
	}

	rb := opts.Span.Child(telemetry.PhaseRobust, "")
	rb.SetInt("candidates", int64(len(cands)))
	rb.SetInt("plans", int64(len(ensemble)))
	defer rb.End()

	for ci, c := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cs := rb.Child(telemetry.PhaseCandidate, fmt.Sprintf("%02d %s", ci, c.Label()))
		row := RobustnessRow{Cand: c}
		if r := c.Result; r != nil && r.Total > 0 {
			for d := range r.ComputeBusy {
				row.Slack += r.BubbleRatio(d)
			}
			row.Slack /= float64(len(r.ComputeBusy))
		}
		// Candidates tuned with a partitioning/placement assignment are
		// re-scored on a machine that mirrors it: the emulator's truth
		// estimator carries the same layer split and the machine applies the
		// same per-rank speed factors the simulator scored with.
		var mach *cluster.Machine
		var err error
		if c.Place != nil {
			mach, err = prof.NewMachinePartitioned(prof.Model, c.Schedule.NumStages(), c.MicroBatch, tp,
				c.Place.LayersPerStage, c.Place.RankSpeed)
		} else {
			mach, err = prof.NewMachine(prof.Model, c.Schedule.NumStages(), c.MicroBatch, tp)
		}
		if err != nil {
			return nil, err
		}
		mach.DP = c.DP
		healthy, err := mach.Run(c.Schedule, iters)
		opts.Metrics.AddRobustRuns(1)
		if err != nil {
			return nil, fmt.Errorf("tuner: healthy run of %s: %w", c.Label(), err)
		}
		row.Healthy, row.HealthyIter = healthy.SamplesPerSec, healthy.IterTime
		cs.SetFloat("healthy", row.Healthy)

		worst := 1.0
		for i := range ensemble {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			plan := ensemble[i]
			mach.Faults = &plan
			out := PlanOutcome{Plan: rep.Plans[i]}
			fs := cs.Child(telemetry.PhaseFault, fmt.Sprintf("%02d %s", i, rep.Plans[i]))
			faulted, err := mach.Run(c.Schedule, iters)
			opts.Metrics.AddRobustRuns(1)
			if err != nil {
				out.Err = err.Error()
			} else {
				out.Throughput, out.IterTime = faulted.SamplesPerSec, faulted.IterTime
				if row.Healthy > 0 {
					out.Retention = out.Throughput / row.Healthy
				}
				out.FaultSlowed = faulted.FaultSlowed
				out.FaultDrops = faulted.FaultDrops
				out.FaultStall = faulted.FaultStall
			}
			row.MeanRetention += out.Retention
			if out.Retention < worst {
				worst = out.Retention
			}
			fs.SetFloat("retention", out.Retention)
			fs.End()
			row.Outcomes = append(row.Outcomes, out)
		}
		mach.Faults = nil
		row.MeanRetention /= float64(len(ensemble))
		row.WorstRetention = worst
		cs.SetFloat("worst_retention", worst)
		cs.End()
		rep.Rows = append(rep.Rows, row)
	}

	rep.Gains = gainSurvival(rep.Rows)
	return rep, nil
}

// pairKey identifies a (scheme, pp, mbs, placement-mode) configuration
// regardless of the checkpointing flag.
type pairKey struct {
	shape string
	pp    int
	mbs   int
	mode  place.Mode
}

// gainSurvival pairs base and mario rows of the same configuration and
// measures the checkpointing gain healthy vs under faults.
func gainSurvival(rows []RobustnessRow) []GainSurvival {
	type pair struct{ base, ckpt *RobustnessRow }
	pairs := make(map[pairKey]*pair)
	var order []pairKey
	for i := range rows {
		c := rows[i].Cand
		k := pairKey{shape: c.Scheme.Shape(), pp: c.PP, mbs: c.MicroBatch, mode: c.PlaceMode}
		p := pairs[k]
		if p == nil {
			p = &pair{}
			pairs[k] = p
			order = append(order, k)
		}
		if c.Ckpt {
			if p.ckpt == nil {
				p.ckpt = &rows[i]
			}
		} else if p.base == nil {
			p.base = &rows[i]
		}
	}
	var out []GainSurvival
	for _, k := range order {
		p := pairs[k]
		if p.base == nil || p.ckpt == nil || p.base.Healthy <= 0 {
			continue
		}
		cfg := fmt.Sprintf("%s-%d-%d", k.shape, k.pp, k.mbs)
		if k.mode != "" {
			cfg += "+" + string(k.mode)
		}
		g := GainSurvival{Config: cfg}
		g.HealthyGain = p.ckpt.Healthy/p.base.Healthy - 1
		n := 0
		for i := range p.ckpt.Outcomes {
			co, bo := p.ckpt.Outcomes[i], p.base.Outcomes[i]
			if co.Err != "" || bo.Err != "" || bo.Throughput <= 0 {
				continue
			}
			g.FaultedGain += co.Throughput/bo.Throughput - 1
			n++
		}
		if n > 0 {
			g.FaultedGain /= float64(n)
		}
		if g.HealthyGain > 0 {
			g.Survival = g.FaultedGain / g.HealthyGain
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Config < out[j].Config })
	return out
}

// Format renders the report as ASCII tables: retention per (schedule, plan),
// then checkpoint-gain survival for the paired configurations.
func (r *RobustnessReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "robustness: %d schedules x %d fault plans (measured)\n", len(r.Rows), len(r.Plans))
	fmt.Fprintf(&b, "%-18s %10s %7s", "schedule", "healthy/s", "slack%")
	for _, p := range r.Plans {
		fmt.Fprintf(&b, " %12s", p)
	}
	fmt.Fprintf(&b, " %6s %6s\n", "mean%", "worst%")
	for i := range r.Rows {
		row := &r.Rows[i]
		fmt.Fprintf(&b, "%-18s %10.2f %7.1f", row.Cand.Label(), row.Healthy, 100*row.Slack)
		for _, o := range row.Outcomes {
			if o.Err != "" {
				fmt.Fprintf(&b, " %12s", "FAILED")
			} else {
				fmt.Fprintf(&b, " %11.1f%%", 100*o.Retention)
			}
		}
		fmt.Fprintf(&b, " %6.1f %6.1f\n", 100*row.MeanRetention, 100*row.WorstRetention)
	}
	if len(r.Gains) > 0 {
		b.WriteString("checkpoint-gain survival (mario vs base, same scheme-pp-mbs):\n")
		for _, g := range r.Gains {
			fmt.Fprintf(&b, "  %-12s healthy gain %+6.2f%%  faulted gain %+6.2f%%  survival %5.1f%%\n",
				g.Config, 100*g.HealthyGain, 100*g.FaultedGain, 100*g.Survival)
		}
	}
	return b.String()
}

// Print writes the formatted report to w.
func (r *RobustnessReport) Print(w io.Writer) { io.WriteString(w, r.Format()) }
