package tuner

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mario/internal/cost"
)

func testSpace(workers int) Space {
	return Space{
		Devices:      8,
		GlobalBatch:  32,
		MicroBatches: []int{1, 2},
		DeviceMem:    cost.A100_40G.MemBytes,
		Workers:      workers,
	}
}

// A completed SearchContext must be byte-identical to Search, for every
// worker count (the planning service's cache depends on it).
func TestSearchContextMatchesSearch(t *testing.T) {
	ref := newTuner()
	best, trace, err := ref.Search(testSpace(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		tn := newTuner()
		b, tr, err := tn.SearchContext(context.Background(), testSpace(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b.Label(), best.Label()) || b.Throughput != best.Throughput {
			t.Errorf("workers=%d: best %s (%v) != reference %s (%v)", workers, b.Label(), b.Throughput, best.Label(), best.Throughput)
		}
		if len(tr) != len(trace) {
			t.Errorf("workers=%d: trace length %d != %d", workers, len(tr), len(trace))
		}
		if tn.Stats != ref.Stats {
			t.Errorf("workers=%d: stats %+v != %+v", workers, tn.Stats, ref.Stats)
		}
	}
}

// An already-cancelled context must abort before any simulation, for both
// the sequential and the parallel driver.
func TestSearchContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		tn := newTuner()
		best, trace, err := tn.SearchContext(ctx, testSpace(workers))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if best != nil || trace != nil {
			t.Fatalf("workers=%d: cancelled search returned best=%v trace len=%d", workers, best, len(trace))
		}
		if tn.Stats.Explored != 0 {
			t.Errorf("workers=%d: pre-cancelled search explored %d points", workers, tn.Stats.Explored)
		}
	}
}

// Cancelling mid-search from a Progress callback aborts promptly and a
// subsequent SearchContext on the same Tuner (shared memo caches) still
// completes correctly — a cancelled compute must not poison the memo.
func TestSearchContextMidFlightCancelAndRetry(t *testing.T) {
	ref := newTuner()
	refBest, refTrace, err := ref.Search(testSpace(1))
	if err != nil {
		t.Fatal(err)
	}

	tn := newTuner()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	tn.Progress = func(c Candidate, best Candidate) {
		seen++
		if seen == 2 {
			cancel()
		}
	}
	_, _, err = tn.SearchContext(ctx, testSpace(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: err = %v, want context.Canceled", err)
	}

	tn.Progress = nil
	best, trace, err := tn.SearchContext(context.Background(), testSpace(4))
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	if best.Label() != refBest.Label() || best.Throughput != refBest.Throughput {
		t.Errorf("retry best %s (%v) != reference %s (%v)", best.Label(), best.Throughput, refBest.Label(), refBest.Throughput)
	}
	if len(trace) != len(refTrace) {
		t.Errorf("retry trace length %d != %d", len(trace), len(refTrace))
	}
}

// RobustnessContext with a cancelled context aborts instead of returning a
// partial report.
func TestRobustnessContextCancelled(t *testing.T) {
	tn := newTuner()
	_, trace, err := tn.Search(testSpace(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RobustnessContext(ctx, tn.Prof, trace, RobustnessOpts{TopK: 2, Iters: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("cancelled robustness returned a report")
	}
}
