package tuner

import (
	"math"
	"runtime"
	"testing"
	"time"

	"mario/internal/telemetry"
)

// searchTrace runs one detSpace search on a fresh Tuner with the given
// worker count and returns the canonical exports.
func searchTrace(t *testing.T, workers int) (jsonl, chrome string, tr *telemetry.Trace) {
	t.Helper()
	tn := newTuner()
	tracer := telemetry.New("test-fingerprint")
	tn.Span = tracer.Root(telemetry.PhaseOptimize, "")
	if _, _, err := tn.Search(detSpace(workers)); err != nil {
		t.Fatalf("Search(workers=%d): %v", workers, err)
	}
	tn.Span.End()
	tr = tracer.Snapshot()
	return string(tr.JSONL()), string(tr.ChromeTrace()), tr
}

// TestTraceWorkerIndependence is the tentpole determinism contract: the
// canonical trace exports (JSONL, canonical Chrome trace, tree rendering)
// are byte-identical for every worker count, even though workers record
// spans speculatively and memo hit/miss attribution is a scheduling
// accident.
func TestTraceWorkerIndependence(t *testing.T) {
	baseJSONL, baseChrome, baseTr := searchTrace(t, 1)
	if baseJSONL == "" {
		t.Fatal("sequential search produced an empty JSONL trace")
	}
	counts := []int{4, runtime.GOMAXPROCS(0)}
	for _, w := range counts {
		jsonl, chrome, tr := searchTrace(t, w)
		if jsonl != baseJSONL {
			t.Errorf("JSONL trace differs between workers=1 and workers=%d:\n--- workers=1\n%s\n--- workers=%d\n%s",
				w, baseJSONL, w, jsonl)
		}
		if chrome != baseChrome {
			t.Errorf("canonical Chrome trace differs between workers=1 and workers=%d", w)
		}
		if got, want := tr.Tree(), baseTr.Tree(); got != want {
			t.Errorf("tree rendering differs between workers=1 and workers=%d:\n--- workers=1\n%s\n--- workers=%d\n%s",
				w, want, w, got)
		}
	}
}

// TestTraceShape spot-checks the canonical structure: one optimize root,
// one search child, one point span per grid point with result attributes,
// and memo tags on the build spans.
func TestTraceShape(t *testing.T) {
	_, _, tr := searchTrace(t, 1)
	if len(tr.Roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(tr.Roots))
	}
	root := tr.Roots[0]
	if root.Phase != telemetry.PhaseOptimize {
		t.Fatalf("root phase = %q, want optimize", root.Phase)
	}
	if len(root.Children) != 1 || root.Children[0].Phase != telemetry.PhaseSearch {
		t.Fatalf("optimize root should have exactly one search child, got %+v", root.Children)
	}
	search := root.Children[0]
	space := detSpace(1).withDefaults()
	points := enumerate(space)
	if len(search.Children) != len(points) {
		t.Fatalf("search has %d point spans, want %d (one per grid point)", len(search.Children), len(points))
	}
	memoFirst := 0
	for _, pt := range search.Children {
		if pt.Phase != telemetry.PhasePoint {
			t.Fatalf("search child phase = %q, want point", pt.Phase)
		}
		result := ""
		for _, a := range pt.Attrs {
			if a.K == "result" {
				result = a.V
			}
		}
		switch result {
		case "explored", "oom", "infeasible", "bound_pruned":
		default:
			t.Fatalf("point %q has result %q", pt.Key, result)
		}
		for _, c := range pt.Children {
			if c.Phase == telemetry.PhaseBuild && c.Memo == "first" {
				memoFirst++
			}
		}
	}
	if memoFirst == 0 {
		t.Error("no build span is tagged memo=first; memo normalization is not running")
	}
}

// TestSelfTimeTelescopes verifies the telescoping identity the flight
// recorder and the acceptance criterion rely on: the per-phase self times
// sum exactly to the root span's duration, and the root span's duration is
// within 5% of the externally measured wall-clock of the search.
func TestSelfTimeTelescopes(t *testing.T) {
	tn := newTuner()
	tracer := telemetry.New("fp")
	tn.Span = tracer.Root(telemetry.PhaseOptimize, "")
	start := time.Now()
	if _, _, err := tn.Search(detSpace(1)); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	tn.Span.End()
	tr := tracer.Snapshot()

	var selfSum time.Duration
	for _, row := range tr.PhaseSummary() {
		selfSum += row.Self
	}
	rootDur := tr.Roots[0].Dur()
	if selfSum != rootDur {
		t.Errorf("self times sum to %v, root duration is %v (telescoping identity broken)", selfSum, rootDur)
	}
	ratio := float64(rootDur) / float64(wall)
	if math.Abs(ratio-1) > 0.05 {
		t.Errorf("root span duration %v vs measured wall-clock %v (ratio %.3f, want within 5%%)", rootDur, wall, ratio)
	}
}

// TestSearchMetrics checks that the deterministic outcome counters match
// SearchStats exactly for any worker count.
func TestSearchMetrics(t *testing.T) {
	for _, w := range []int{1, 4} {
		reg := telemetry.NewRegistry()
		m := telemetry.NewSearchMetrics(reg)
		tn := newTuner()
		tn.Metrics = m
		if _, _, err := tn.Search(detSpace(w)); err != nil {
			t.Fatal(err)
		}
		st := tn.Stats
		checks := []struct {
			name string
			got  int64
			want int
		}{
			{"explored", m.PointsExplored.Value(), st.Explored},
			{"oom", m.PointsOOM.Value(), st.OOMRejected},
			{"infeasible", m.PointsPruned.Value(), st.Pruned},
			{"bound_pruned", m.PointsBoundPruned.Value(), st.BoundPruned},
			{"improved", m.PointsImproved.Value(), st.Improved},
		}
		for _, c := range checks {
			if c.got != int64(c.want) {
				t.Errorf("workers=%d: metric %s = %d, SearchStats says %d", w, c.name, c.got, c.want)
			}
		}
		if m.Searches.Value() != 1 {
			t.Errorf("workers=%d: searches counter = %d, want 1", w, m.Searches.Value())
		}
		if m.Sims.Value() == 0 {
			t.Errorf("workers=%d: sims counter stayed zero", w)
		}
		hits, misses := tn.CacheStats()
		if got := m.BuildHits.Value() + m.GraphHits.Value(); got != hits {
			t.Errorf("workers=%d: memo hit metrics = %d, CacheStats hits = %d", w, got, hits)
		}
		if got := m.BuildMisses.Value() + m.GraphMisses.Value(); got != misses {
			t.Errorf("workers=%d: memo miss metrics = %d, CacheStats misses = %d", w, got, misses)
		}
	}
}
