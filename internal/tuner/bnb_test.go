package tuner

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/profile"
)

// pointOf reconstructs the canonical grid coordinate of a traced candidate.
func pointOf(c Candidate) gridPoint {
	return gridPoint{scheme: c.Scheme, ckpt: c.Ckpt, pp: c.PP, dp: c.DP, mbs: c.MicroBatch}
}

// maxPeak returns the worst per-device simulated peak of a candidate.
func maxPeak(c Candidate) float64 {
	var peak float64
	if c.Result != nil {
		for _, p := range c.Result.PeakMem {
			if p > peak {
				peak = p
			}
		}
	}
	return peak
}

// runSpace runs one Search on a fresh tuner (optionally mutated) and captures
// the comparable outputs, like runSearch but for an arbitrary space.
func runSpace(t *testing.T, sp Space, mut func(*Tuner)) searchRun {
	t.Helper()
	tn := newTuner()
	if mut != nil {
		mut(tn)
	}
	var run searchRun
	tn.Progress = func(c Candidate, best Candidate) {
		run.progress = append(run.progress, fmt.Sprintf("%s|%016x -> %s|%016x",
			c.Label(), math.Float64bits(c.Throughput), best.Label(), math.Float64bits(best.Throughput)))
	}
	best, trace, err := tn.Search(sp)
	if err != nil {
		t.Fatalf("Search(%+v): %v", sp, err)
	}
	run.best = candString(*best)
	for _, c := range trace {
		run.trace = append(run.trace, candString(c))
	}
	run.stats = tn.Stats
	return run
}

// stratOut is the strategy-independent outcome of a Search: the error text,
// the best candidate rendered byte-exactly, and the ordering-invariant stats
// digest. Traces and ordering-variant counters legitimately differ between
// the grid walk and branch-and-bound, so they are excluded.
type stratOut struct {
	err      string
	best     string
	pruned   int
	feasible int
}

func runStrategy(sp Space, mut func(*Tuner)) stratOut {
	tn := newTuner()
	if mut != nil {
		mut(tn)
	}
	best, _, err := tn.Search(sp)
	out := stratOut{}
	out.pruned, out.feasible = tn.Stats.invariant()
	if err != nil {
		out.err = err.Error()
		return out
	}
	out.best = candString(*best)
	return out
}

// TestBnBMatchesGridArgmax is the headline equivalence contract: on the same
// space, the branch-and-bound search (the default), the canonical grid walk
// (NoBnB) and the exhaustive walk (NoPrune) return the byte-identical best
// candidate and partition the grid into the same structural-prune / feasible
// sets, while branch-and-bound simulates no more points than the exhaustive
// walk.
func TestBnBMatchesGridArgmax(t *testing.T) {
	cases := []struct {
		name  string
		sp    Space
		split bool
	}{
		{"detSpace", detSpace(1), false},
		{"split-backward", detSpace(1), true},
		{"gpipe-chimera", Space{
			Devices:      8,
			GlobalBatch:  32,
			Schemes:      []pipeline.Scheme{pipeline.SchemeGPipe, pipeline.SchemeChimera},
			MicroBatches: []int{1, 2},
			DeviceMem:    cost.A100_40G.MemBytes,
			Workers:      1,
		}, false},
		{"no-mem-limit", Space{
			Devices:      8,
			GlobalBatch:  64,
			MicroBatches: []int{2, 4},
			Workers:      1,
		}, false},
		{"zero-bubble", Space{
			Devices:      8,
			GlobalBatch:  64,
			Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeZBH1, pipeline.SchemeDualPipeD},
			MicroBatches: []int{1, 2},
			DeviceMem:    cost.A100_40G.MemBytes,
			Workers:      1,
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := func(tn *Tuner) { tn.SplitBackward = tc.split }

			bnbSp := tc.sp
			bnb := runStrategy(bnbSp, mut)

			gridSp := tc.sp
			gridSp.NoBnB = true
			grid := runStrategy(gridSp, mut)

			fullSp := tc.sp
			fullSp.NoPrune = true
			fullTn := newTuner()
			mut(fullTn)
			fullBest, _, err := fullTn.Search(fullSp)
			if err != nil {
				t.Fatal(err)
			}
			full := stratOut{best: candString(*fullBest)}
			full.pruned, full.feasible = fullTn.Stats.invariant()

			if bnb.err != "" || grid.err != "" {
				t.Fatalf("unexpected errors: bnb=%q grid=%q", bnb.err, grid.err)
			}
			if bnb.best != grid.best {
				t.Errorf("bnb best differs from grid best:\n bnb: %s\ngrid: %s", bnb.best, grid.best)
			}
			if bnb.best != full.best {
				t.Errorf("bnb best differs from exhaustive best:\n bnb: %s\nfull: %s", bnb.best, full.best)
			}
			for _, o := range []struct {
				name string
				out  stratOut
			}{{"grid", grid}, {"full", full}} {
				if bnb.pruned != o.out.pruned || bnb.feasible != o.out.feasible {
					t.Errorf("invariant digest differs bnb=(%d,%d) %s=(%d,%d)",
						bnb.pruned, bnb.feasible, o.name, o.out.pruned, o.out.feasible)
				}
			}
			if exhaustive := fullTn.Stats.Explored; bnb.feasible != exhaustive {
				t.Errorf("bnb accounts for %d feasible points, exhaustive explored %d", bnb.feasible, exhaustive)
			}
		})
	}
}

// memPressureSpace builds a 1F1B space whose pp=4 points are provably doomed
// (their admissible memory lower bound exceeds the budget) while at least one
// pp=8 configuration still fits: the budget is placed between the smallest
// simulated pp=8 peak and the pp=4 memory floor. It returns the space with
// DeviceMem set.
func memPressureSpace(t *testing.T) Space {
	t.Helper()
	sp := Space{
		Devices:      8,
		GlobalBatch:  32,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B},
		MicroBatches: []int{1, 2},
		Workers:      1,
	}
	spd := sp.withDefaults()
	probe := newTuner()
	nd4, ok := probe.probePoint(spd, gridPoint{scheme: pipeline.Scheme1F1B, pp: 4, dp: 2, mbs: 1})
	if !ok {
		t.Fatal("pp=4 probe point is structurally infeasible")
	}
	ref := newTuner()
	full := sp
	full.NoPrune = true // no DeviceMem: unconstrained reference peaks
	_, trace, err := ref.Search(full)
	if err != nil {
		t.Fatal(err)
	}
	p8 := math.Inf(1)
	for _, c := range trace {
		if c.PP == 8 && c.Result != nil {
			if pk := maxPeak(c); pk < p8 {
				p8 = pk
			}
		}
	}
	if !(p8 < nd4.memLB) {
		t.Fatalf("fixture premise broken: smallest pp=8 peak %g is not below the pp=4 memory floor %g", p8, nd4.memLB)
	}
	sp.DeviceMem = (p8 + nd4.memLB) / 2
	return sp
}

// TestBnBMemoryPruneDeterministic puts the memory-feasibility prune under the
// determinism contract: on a space engineered so the pp=4 column provably
// OOMs, the branch-and-bound search mem-prunes those points without
// simulating them, returns the grid walk's best candidate, and emits
// byte-identical outputs for every worker count.
func TestBnBMemoryPruneDeterministic(t *testing.T) {
	sp := memPressureSpace(t)

	base := runSpace(t, sp, nil)
	if base.stats.MemPruned == 0 {
		t.Fatalf("engineered memory pressure pruned nothing: stats %+v", base.stats)
	}
	if base.stats.Explored == 0 {
		t.Fatalf("memory pressure left nothing explored: stats %+v", base.stats)
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		spw := sp
		spw.Workers = w
		got := runSpace(t, spw, nil)
		if got.stats != base.stats {
			t.Errorf("workers=%d: stats %+v, want %+v", w, got.stats, base.stats)
		}
		if got.best != base.best {
			t.Errorf("workers=%d: best differs\n got: %s\nwant: %s", w, got.best, base.best)
		}
		if len(got.trace) != len(base.trace) {
			t.Fatalf("workers=%d: trace length %d, want %d", w, len(got.trace), len(base.trace))
		}
		for i := range got.trace {
			if got.trace[i] != base.trace[i] {
				t.Errorf("workers=%d: trace[%d] differs", w, i)
				break
			}
		}
		if len(got.progress) != len(base.progress) {
			t.Fatalf("workers=%d: %d progress callbacks, want %d", w, len(got.progress), len(base.progress))
		}
	}

	gridSp := sp
	gridSp.NoBnB = true
	grid := runStrategy(gridSp, nil)
	if grid.err != "" {
		t.Fatal(grid.err)
	}
	if base.best != grid.best {
		t.Errorf("mem-pruned bnb best differs from grid best:\n bnb: %s\ngrid: %s", base.best, grid.best)
	}
	p, f := base.stats.invariant()
	if p != grid.pruned || f != grid.feasible {
		t.Errorf("invariant digest differs: bnb=(%d,%d) grid=(%d,%d)", p, f, grid.pruned, grid.feasible)
	}
}

// TestBnBBoundAdmissible checks each bound in isolation against ground truth
// from an exhaustive search: for every simulated point, the throughput upper
// bound is at least the simulated throughput, the memory lower bound is at
// most the simulated worst-device peak, and a doomed verdict implies the
// simulation really OOMs. Run for both backward modes, since the split pass
// changes what transformations the bound must stay admissible under.
func TestBnBBoundAdmissible(t *testing.T) {
	for _, split := range []bool{false, true} {
		name := "base"
		if split {
			name = "split-backward"
		}
		t.Run(name, func(t *testing.T) {
			tn := newTuner()
			tn.SplitBackward = split
			sp := detSpace(1)
			sp.NoPrune = true
			_, trace, err := tn.Search(sp)
			if err != nil {
				t.Fatal(err)
			}
			if len(trace) == 0 {
				t.Fatal("exhaustive search produced an empty trace")
			}
			spd := sp.withDefaults()
			for _, c := range trace {
				nd, ok := tn.probePoint(spd, pointOf(c))
				if !ok {
					t.Errorf("simulated point %s probes as structurally infeasible", c.Label())
					continue
				}
				if nd.ub < c.Throughput {
					t.Errorf("%s: upper bound %g below simulated throughput %g (bound not admissible)",
						c.Label(), nd.ub, c.Throughput)
				}
				if math.IsInf(nd.ub, 1) {
					t.Errorf("%s: probe produced an infinite bound for a feasible point", c.Label())
				}
				if c.Result != nil {
					if pk := maxPeak(c); nd.memLB > pk {
						t.Errorf("%s: memory lower bound %g exceeds simulated peak %g (bound not admissible)",
							c.Label(), nd.memLB, pk)
					}
				}
				if nd.doomed && !c.OOM {
					t.Errorf("%s: probe declared the point doomed but the simulation did not OOM", c.Label())
				}
			}
		})
	}
}

// TestBnBPrunedNodesCannotWin exhaustively verifies every pruning decision in
// a sampled space: any point the exhaustive walk simulated but branch-and-
// bound skipped must lose the canonical tie-break (higher throughput, then
// smaller grid index) against the returned best — i.e. no pruned node could
// have changed the argmax.
func TestBnBPrunedNodesCannotWin(t *testing.T) {
	sp := detSpace(1)
	bnbTn := newTuner()
	bnbBest, bnbTrace, err := bnbTn.Search(sp)
	if err != nil {
		t.Fatal(err)
	}
	fullSp := sp
	fullSp.NoPrune = true
	fullTn := newTuner()
	fullBest, fullTrace, err := fullTn.Search(fullSp)
	if err != nil {
		t.Fatal(err)
	}
	if candString(*bnbBest) != candString(*fullBest) {
		t.Fatalf("argmax differs:\n bnb: %s\nfull: %s", candString(*bnbBest), candString(*fullBest))
	}
	idx := make(map[gridPoint]int)
	for i, p := range enumerate(sp.withDefaults()) {
		idx[p] = i
	}
	explored := make(map[gridPoint]bool, len(bnbTrace))
	for _, c := range bnbTrace {
		explored[pointOf(c)] = true
	}
	bestIdx, ok := idx[pointOf(*bnbBest)]
	if !ok {
		t.Fatal("best candidate is not a grid point")
	}
	prunedSeen := 0
	for _, c := range fullTrace {
		p := pointOf(c)
		if explored[p] {
			continue
		}
		prunedSeen++
		if c.Throughput > bnbBest.Throughput ||
			(c.Throughput == bnbBest.Throughput && idx[p] < bestIdx) {
			t.Errorf("pruned point %s (idx %d, throughput %g) beats the returned best %s (idx %d, throughput %g)",
				c.Label(), idx[p], c.Throughput, bnbBest.Label(), bestIdx, bnbBest.Throughput)
		}
	}
	if want := bnbTn.Stats.BoundPruned + bnbTn.Stats.MemPruned; prunedSeen != want {
		t.Errorf("full trace shows %d pruned points, stats count %d", prunedSeen, want)
	}
	if prunedSeen == 0 {
		t.Log("note: branch-and-bound pruned nothing on this space")
	}
}

// TestBnBEdgeCases is the table-driven parity check on degenerate spaces:
// fully infeasible grids (both strategies must return the identical error),
// dp=1 (PP pinned to the device count), a single-device single-stage
// pipeline, an all-OOM budget (the argmax falls back to the canonically first
// zero-throughput candidate) and a one-sample batch.
func TestBnBEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		sp      Space
		wantErr string
	}{
		{
			// GlobalBatch 7 with mbs=2: no (mbs, dp) divides the batch.
			name: "all-infeasible",
			sp: Space{
				Devices: 8, GlobalBatch: 7,
				MicroBatches: []int{2},
				DeviceMem:    cost.A100_40G.MemBytes,
				Workers:      1,
			},
			wantErr: "tuner: no feasible configuration in the search space",
		},
		{
			name: "dp-one",
			sp: Space{
				Devices: 8, GlobalBatch: 16,
				MinPP:        8,
				MicroBatches: []int{1, 2},
				DeviceMem:    cost.A100_40G.MemBytes,
				Workers:      1,
			},
		},
		{
			name: "single-device",
			sp: Space{
				Devices: 1, GlobalBatch: 4,
				Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B},
				MicroBatches: []int{1, 2},
				DeviceMem:    cost.A100_40G.MemBytes,
				Workers:      1,
			},
		},
		{
			// A one-byte budget: every candidate OOMs, throughput is zero
			// everywhere, and the canonical tie-break alone picks the winner.
			name: "all-oom",
			sp: Space{
				Devices: 8, GlobalBatch: 64,
				MicroBatches: []int{1, 2, 4},
				DeviceMem:    1,
				Workers:      1,
			},
		},
		{
			name: "one-sample-batch",
			sp: Space{
				Devices: 8, GlobalBatch: 1,
				MicroBatches: []int{1},
				DeviceMem:    cost.A100_40G.MemBytes,
				Workers:      1,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bnb := runStrategy(tc.sp, nil)
			gridSp := tc.sp
			gridSp.NoBnB = true
			grid := runStrategy(gridSp, nil)
			if bnb.err != grid.err {
				t.Fatalf("error parity broken: bnb=%q grid=%q", bnb.err, grid.err)
			}
			if tc.wantErr != "" && bnb.err != tc.wantErr {
				t.Fatalf("error = %q, want %q", bnb.err, tc.wantErr)
			}
			if bnb.best != grid.best {
				t.Errorf("best differs:\n bnb: %s\ngrid: %s", bnb.best, grid.best)
			}
			if bnb.pruned != grid.pruned || bnb.feasible != grid.feasible {
				t.Errorf("invariant digest differs: bnb=(%d,%d) grid=(%d,%d)",
					bnb.pruned, bnb.feasible, grid.pruned, grid.feasible)
			}
		})
	}
}

// TestBnBExplorationEfficiency pins the PR's acceptance criterion on the
// paper's 64-device GPT3-13B grid (the BenchmarkTunerSearch space, >200
// configurations): branch-and-bound must simulate at most half the points
// the exhaustive walk does while returning the byte-identical argmax.
func TestBnBExplorationEfficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("large grid; skipped with -short")
	}
	prof := &profile.Profiler{
		Model: cost.GPT3_13B, HW: cost.A100_40G,
		Spec: profile.DefaultMachine, Devices: 4, Iters: 4,
	}
	space := Space{
		Devices:      64,
		GlobalBatch:  512,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave, pipeline.SchemeGPipe},
		MicroBatches: []int{1, 2, 4, 8, 16, 32},
		DeviceMem:    cost.A100_40G.MemBytes,
		Workers:      runtime.GOMAXPROCS(0),
	}
	fullTn := &Tuner{Prof: prof, MaxRounds: 1}
	fullSp := space
	fullSp.NoPrune = true
	fullBest, _, err := fullTn.Search(fullSp)
	if err != nil {
		t.Fatal(err)
	}
	bnbTn := &Tuner{Prof: prof, MaxRounds: 1}
	bnbBest, _, err := bnbTn.Search(space)
	if err != nil {
		t.Fatal(err)
	}
	if candString(*bnbBest) != candString(*fullBest) {
		t.Errorf("argmax differs:\n bnb: %s\nfull: %s", candString(*bnbBest), candString(*fullBest))
	}
	fullN, bnbN := fullTn.Stats.Explored, bnbTn.Stats.Explored
	t.Logf("exhaustive explored %d; bnb explored %d, bound-pruned %d, mem-pruned %d",
		fullN, bnbN, bnbTn.Stats.BoundPruned, bnbTn.Stats.MemPruned)
	if 2*bnbN > fullN {
		t.Errorf("bnb explored %d of %d points, want at most half", bnbN, fullN)
	}
	p, f := bnbTn.Stats.invariant()
	pF, fF := fullTn.Stats.invariant()
	if p != pF || f != fF {
		t.Errorf("invariant digest differs: bnb=(%d,%d) full=(%d,%d)", p, f, pF, fF)
	}
}

// FuzzBnBArgmaxEquivalence drives the branch-and-bound search and the
// exhaustive grid walk over randomized small spaces and demands the
// byte-identical best plan, matching error text, and an equal
// ordering-invariant stats digest — the differential fuzzer for the search
// strategy, mirroring FuzzDeltaSimEquivalence for the simulator.
func FuzzBnBArgmaxEquivalence(f *testing.F) {
	f.Add(uint8(2), uint16(32), uint8(3), uint8(1), uint8(0), false)
	f.Add(uint8(1), uint16(16), uint8(5), uint8(15), uint8(3), true)
	f.Add(uint8(0), uint16(7), uint8(2), uint8(2), uint8(200), false)
	f.Add(uint8(2), uint16(64), uint8(1), uint8(4), uint8(1), true)
	f.Fuzz(func(t *testing.T, dSel uint8, gb uint16, mbsMask, schemeMask, memSel uint8, split bool) {
		devices := []int{2, 4, 8}[int(dSel)%3]
		batch := 1 + int(gb)%64
		var mbs []int
		for i, m := range []int{1, 2, 3, 4, 8} {
			if mbsMask&(1<<i) != 0 {
				mbs = append(mbs, m)
			}
		}
		if len(mbs) == 0 {
			mbs = []int{1, 2}
		}
		all := []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave, pipeline.SchemeGPipe}
		var schemes []pipeline.Scheme
		for i, s := range all {
			if schemeMask&(1<<i) != 0 {
				schemes = append(schemes, s)
			}
		}
		var mem float64
		if memSel > 0 {
			mem = cost.A100_40G.MemBytes / float64(1+int(memSel)%8)
		}
		sp := Space{
			Devices:      devices,
			GlobalBatch:  batch,
			Schemes:      schemes, // nil selects the default set
			MicroBatches: mbs,
			DeviceMem:    mem,
			Workers:      1,
		}
		prof := &profile.Profiler{
			Model: cost.LLaMA2_3B, HW: cost.A100_40G,
			Spec: profile.DefaultMachine, Devices: 4, Iters: 4,
		}
		run := func(noPrune bool) (best string, pruned, feasible int, err error) {
			tn := &Tuner{Prof: prof, MaxRounds: 2, SplitBackward: split}
			s := sp
			s.NoPrune = noPrune
			b, _, err := tn.Search(s)
			pruned, feasible = tn.Stats.invariant()
			if err != nil {
				return "", pruned, feasible, err
			}
			return candString(*b), pruned, feasible, nil
		}
		bBest, bP, bF, bErr := run(false)
		gBest, gP, gF, gErr := run(true)
		switch {
		case (bErr == nil) != (gErr == nil):
			t.Fatalf("error parity broken: bnb=%v grid=%v (space %+v)", bErr, gErr, sp)
		case bErr != nil:
			if bErr.Error() != gErr.Error() {
				t.Fatalf("error text differs: bnb=%q grid=%q", bErr, gErr)
			}
			return
		}
		if bBest != gBest {
			t.Fatalf("argmax differs (space %+v):\n bnb: %s\nfull: %s", sp, bBest, gBest)
		}
		if bP != gP || bF != gF {
			t.Fatalf("invariant digest differs: bnb=(%d,%d) full=(%d,%d)", bP, bF, gP, gF)
		}
	})
}
