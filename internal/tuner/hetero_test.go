package tuner

import (
	"reflect"
	"strings"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/place"
)

// heteroSpace is detSpace with one slow device and the auto placement axis:
// every heterogeneous grid point carries a partitioning/placement assignment.
func heteroSpace(workers int) Space {
	sp := detSpace(workers)
	sp.DeviceSpeeds = []float64{1, 1, 0.8, 1, 1, 1, 1, 1}
	return sp
}

// TestPlacementModes pins the axis-enumeration contract: homogeneous spaces
// keep the legacy empty mode (byte-identical searches), heterogeneous auto
// explores uniform and co-opt, and forced modes collapse to one point each.
func TestPlacementModes(t *testing.T) {
	homog := detSpace(1).withDefaults()
	if got := placementModes(homog); !reflect.DeepEqual(got, []place.Mode{""}) {
		t.Errorf("homogeneous auto modes = %v, want [\"\"]", got)
	}
	homogCo := detSpace(1)
	homogCo.Placement = place.ModeCoOpt
	if got := placementModes(homogCo.withDefaults()); !reflect.DeepEqual(got, []place.Mode{place.ModeCoOpt}) {
		t.Errorf("homogeneous coopt modes = %v", got)
	}
	het := heteroSpace(1).withDefaults()
	if got := placementModes(het); !reflect.DeepEqual(got, []place.Mode{place.ModeUniform, place.ModeCoOpt}) {
		t.Errorf("heterogeneous auto modes = %v", got)
	}
	hetUni := heteroSpace(1)
	hetUni.Placement = place.ModeUniform
	if got := placementModes(hetUni.withDefaults()); !reflect.DeepEqual(got, []place.Mode{place.ModeUniform}) {
		t.Errorf("heterogeneous uniform modes = %v", got)
	}
}

// TestAllOnesSpeedsAreLegacy: declaring every device at nominal speed must
// normalize to the speed-free space and emit byte-identical output — the
// placement axis never perturbs a homogeneous search.
func TestAllOnesSpeedsAreLegacy(t *testing.T) {
	base := runSpace(t, detSpace(1), nil)
	ones := detSpace(1)
	ones.DeviceSpeeds = []float64{1, 1, 1, 1, 1, 1, 1, 1}
	got := runSpace(t, ones, nil)
	if got.best != base.best {
		t.Errorf("all-ones speeds changed the best:\n got: %s\nwant: %s", got.best, base.best)
	}
	if got.stats != base.stats {
		t.Errorf("all-ones speeds changed stats: %+v vs %+v", got.stats, base.stats)
	}
	if len(got.trace) != len(base.trace) {
		t.Fatalf("trace length %d vs %d", len(got.trace), len(base.trace))
	}
	for i := range got.trace {
		if got.trace[i] != base.trace[i] {
			t.Errorf("trace[%d] differs\n got: %s\nwant: %s", i, got.trace[i], base.trace[i])
			break
		}
	}
}

// TestHeteroDeterministicAcrossWorkers extends the worker-independence
// guarantee over the placement axis: the best candidate, trace, progress
// sequence and stats are byte-identical for Workers ∈ {1, 4}.
func TestHeteroDeterministicAcrossWorkers(t *testing.T) {
	base := runSpace(t, heteroSpace(1), nil)
	if base.stats.Explored == 0 {
		t.Fatal("sequential hetero baseline explored nothing")
	}
	foundPlaced := false
	for _, s := range base.trace {
		if strings.Contains(s, "+uniform") || strings.Contains(s, "+coopt") {
			foundPlaced = true
			break
		}
	}
	if !foundPlaced {
		t.Fatal("hetero trace carries no placement-labelled candidates")
	}
	got := runSpace(t, heteroSpace(4), nil)
	if got.stats != base.stats {
		t.Errorf("workers=4: stats %+v, want %+v", got.stats, base.stats)
	}
	if got.best != base.best {
		t.Errorf("workers=4: best differs\n got: %s\nwant: %s", got.best, base.best)
	}
	if len(got.trace) != len(base.trace) {
		t.Fatalf("workers=4: trace length %d, want %d", len(got.trace), len(base.trace))
	}
	for i := range got.trace {
		if got.trace[i] != base.trace[i] {
			t.Errorf("workers=4: trace[%d] differs\n got: %s\nwant: %s", i, got.trace[i], base.trace[i])
			break
		}
	}
	if len(got.progress) != len(base.progress) {
		t.Fatalf("workers=4: %d progress callbacks, want %d", len(got.progress), len(base.progress))
	}
	for i := range got.progress {
		if got.progress[i] != base.progress[i] {
			t.Errorf("workers=4: progress[%d] = %q, want %q", i, got.progress[i], base.progress[i])
			break
		}
	}
}

// TestHeteroBnBMatchesGridArgmax extends the strategy-equivalence contract
// over the placement axis: branch-and-bound, the canonical grid walk and the
// exhaustive walk agree on the best candidate and on the structural
// prune/feasible partition of the heterogeneous grid.
func TestHeteroBnBMatchesGridArgmax(t *testing.T) {
	cases := []struct {
		name string
		sp   Space
	}{
		{"hetero-auto", heteroSpace(1)},
		{"hetero-coopt", func() Space {
			sp := heteroSpace(1)
			sp.Placement = place.ModeCoOpt
			return sp
		}()},
		{"homog-coopt", func() Space {
			sp := detSpace(1)
			sp.Placement = place.ModeCoOpt
			return sp
		}()},
		{"hetero-1f1b-mem", Space{
			Devices:      8,
			GlobalBatch:  32,
			Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeGPipe},
			MicroBatches: []int{1, 2},
			DeviceMem:    cost.A100_40G.MemBytes,
			Workers:      1,
			DeviceSpeeds: []float64{1, 0.7, 1, 1, 1, 1, 1, 1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bnb := runStrategy(tc.sp, nil)

			gridSp := tc.sp
			gridSp.NoBnB = true
			grid := runStrategy(gridSp, nil)

			fullSp := tc.sp
			fullSp.NoPrune = true
			full := runStrategy(fullSp, nil)

			if bnb.err != "" || grid.err != "" || full.err != "" {
				t.Fatalf("unexpected errors: bnb=%q grid=%q full=%q", bnb.err, grid.err, full.err)
			}
			if bnb.best != grid.best {
				t.Errorf("bnb best differs from grid best:\n bnb: %s\ngrid: %s", bnb.best, grid.best)
			}
			if bnb.best != full.best {
				t.Errorf("bnb best differs from exhaustive best:\n bnb: %s\nfull: %s", bnb.best, full.best)
			}
			if bnb.pruned != grid.pruned || bnb.feasible != grid.feasible {
				t.Errorf("invariant digest differs bnb=(%d,%d) grid=(%d,%d)",
					bnb.pruned, bnb.feasible, grid.pruned, grid.feasible)
			}
			if bnb.pruned != full.pruned || bnb.feasible != full.feasible {
				t.Errorf("invariant digest differs bnb=(%d,%d) full=(%d,%d)",
					bnb.pruned, bnb.feasible, full.pruned, full.feasible)
			}
		})
	}
}

// TestHeteroCandidateAssignment: every heterogeneous candidate must carry a
// well-formed assignment — the partition covers the model's layers, the
// placement is a permutation, and the label advertises the mode.
func TestHeteroCandidateAssignment(t *testing.T) {
	tn := newTuner()
	sp := heteroSpace(1)
	best, trace, err := tn.Search(sp)
	if err != nil {
		t.Fatal(err)
	}
	if best.PlaceMode == "" || best.Place == nil {
		t.Fatalf("hetero best %s carries no assignment", best.Label())
	}
	layers := tn.Prof.Model.Layers
	for _, c := range trace {
		if c.PlaceMode == "" {
			t.Errorf("hetero candidate %s has no placement mode", c.Label())
			continue
		}
		if !strings.HasSuffix(c.Label(), "+"+string(c.PlaceMode)) {
			t.Errorf("label %q does not advertise mode %q", c.Label(), c.PlaceMode)
		}
		if c.Place == nil {
			t.Errorf("candidate %s has mode but no assignment", c.Label())
			continue
		}
		if len(c.Place.LayersPerStage) != c.Schedule.NumStages() {
			t.Errorf("%s: %d partition entries for %d stages",
				c.Label(), len(c.Place.LayersPerStage), c.Schedule.NumStages())
		}
		total := 0
		for _, n := range c.Place.LayersPerStage {
			total += n
		}
		if total != layers {
			t.Errorf("%s: partition %v covers %d layers, want %d",
				c.Label(), c.Place.LayersPerStage, total, layers)
		}
		seen := make([]bool, len(c.Place.DeviceOf))
		for _, d := range c.Place.DeviceOf {
			if d < 0 || d >= len(seen) || seen[d] {
				t.Errorf("%s: DeviceOf %v is not a permutation", c.Label(), c.Place.DeviceOf)
				break
			}
			seen[d] = true
		}
	}
}
