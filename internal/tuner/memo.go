package tuner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"mario/internal/pipeline"
	"mario/internal/sim"
)

// memo is a concurrency-safe, compute-once cache: the first caller of a key
// runs the compute function while later callers (including concurrent ones)
// block on the entry's sync.Once and share the result. Values must be treated
// as immutable by all callers — the tuner clones schedules before handing
// them out in Candidates.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]

	hits, misses atomic.Int64
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// do returns the cached value for k, computing it with f exactly once per
// key. Errors are cached too: a key that failed once fails the same way for
// every later caller, which keeps parallel and sequential searches identical.
// The one exception is context cancellation — a compute aborted by a
// cancelled SearchContext is evicted immediately so the key is retried by
// the next caller instead of poisoning every later search on the same Tuner.
func (c *memo[K, V]) do(k K, f func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e, ok := c.m[k]
	if !ok {
		e = new(memoEntry[V])
		c.m[k] = e
	}
	c.mu.Unlock()
	computed := false
	e.once.Do(func() {
		e.val, e.err = f()
		computed = true
	})
	if computed {
		c.misses.Add(1)
		if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
			c.mu.Lock()
			// Only evict our own entry: a concurrent caller may already have
			// replaced it with a fresh (retrying) one.
			if cur, ok := c.m[k]; ok && cur == e {
				delete(c.m, k)
			}
			c.mu.Unlock()
		}
	} else {
		c.hits.Add(1)
	}
	return e.val, e.err
}

// len returns the number of cached keys.
func (c *memo[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// buildKey identifies one scheme.Build output. mbs is deliberately absent:
// schedule expansion depends only on the scheme, the pipeline depth, the
// micro-batch count and the Interleave chunk count, so checkpointed and
// non-checkpointed grid points (and repeated Search calls on the same tuner)
// share one build.
type buildKey struct {
	scheme  pipeline.Scheme
	devices int
	micros  int
	chunks  int
}

// graphKey identifies one graph-tuner run. The ISSUE-level identity is
// (scheme, pp, micros, chunks, ckpt); the remaining fields are guards for
// everything else that can steer the simulator-guided passes — the estimator
// inputs (mbs, tp), the acceptance-simulation options (dp, memLimit) and the
// tuner knobs (maxRounds, split) — so a cache hit is provably equivalent to
// recomputing.
type graphKey struct {
	bk        buildKey
	mbs       int
	dp        int
	tp        int
	memLimit  float64
	maxRounds int
	split     bool
	// place is the canonical Assignment.Key() of the point's partitioning/
	// placement assignment ("" for legacy axis-free points): assignments
	// steer the estimator the graph passes simulate with, and memos persist
	// across Search calls on the same Tuner, so the identity must be in the
	// key.
	place string
}

// graphVal is the cached outcome of graph.Optimize (plus the optional
// split-backward refinement): the optimized schedule and its simulation.
type graphVal struct {
	sched *pipeline.Schedule
	res   *sim.Result
}

// CacheStats reports the cumulative memoization hit/miss counters across the
// tuner's schedule-build and graph-pass caches. The counters are race-safe
// but — unlike SearchStats — not deterministic under Workers > 1: which of
// two concurrent grid points computes a shared key and which one hits is a
// scheduling accident. They are therefore reported separately and never
// compared in determinism tests.
func (t *Tuner) CacheStats() (hits, misses int64) {
	hits = t.builds.hits.Load() + t.graphs.hits.Load()
	misses = t.builds.misses.Load() + t.graphs.misses.Load()
	return hits, misses
}
