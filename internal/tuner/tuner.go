// Package tuner implements Mario's automatic schedule tuner (§5.3): a grid
// search over Equation 1's parameters — checkpointing on/off, pipeline
// scheme, PP dimension, DP dimension, micro-batch size — maximising the
// simulator-estimated training throughput under the device-memory
// constraint. Configurations that the simulator predicts to exceed device
// memory score zero (the paper's OOM penalty), and a data-parallel
// efficiency coefficient models DP scaling.
//
// The search fans grid points out to a bounded worker pool (Space.Workers)
// and merges the results back in canonical iteration order, so the best
// candidate, the trace and the SearchStats are identical for every worker
// count. Two layers keep the grid cheap: a memoization layer shares built
// schedules and graph-pass output across grid points (and across Search
// calls on the same Tuner), and an admissible upper-bound prune skips the
// simulation of points whose best-case throughput cannot beat the best
// already merged.
package tuner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/place"
	"mario/internal/profile"
	"mario/internal/scheme"
	"mario/internal/sim"
	"mario/internal/telemetry"
)

// Space is the search space of Equation 1.
type Space struct {
	// Devices is the total accelerator count D.
	Devices int
	// GlobalBatch is the fixed global batch size (samples per iteration).
	GlobalBatch int
	// Schemes lists the candidate pipeline schemes b; nil means {V, X, W}.
	Schemes []pipeline.Scheme
	// Checkpoint lists the candidate values of a; nil means {false, true}.
	Checkpoint []bool
	// MinPP and MaxPP bound the pipeline-parallel dimension; zero values
	// default to the paper's 4 ≤ pp ≤ D.
	MinPP, MaxPP int
	// MicroBatches lists candidate micro-batch sizes; nil means powers of
	// two up to 32.
	MicroBatches []int
	// TP is the fixed tensor-parallel degree (Equation 1 keeps it
	// constant); 0 means 1. TP devices are in addition to Devices.
	TP int
	// DeviceMem is the per-device memory budget dmem in bytes; zero
	// disables the OOM penalty.
	DeviceMem float64
	// Chunks is the Interleave model-chunk count; 0 means 2.
	Chunks int
	// Workers bounds the number of concurrent grid-point evaluations;
	// 0 means GOMAXPROCS, 1 evaluates inline with no goroutines. Results
	// are identical for every worker count.
	Workers int
	// NoPrune disables the admissible upper-bound prune so every
	// structurally feasible point is simulated — the trace then contains
	// the full Fig. 11 curve. Benchmarks also use it to compare equal
	// amounts of work across worker counts. NoPrune implies NoBnB.
	NoPrune bool
	// NoBnB falls back to the canonical-order grid walk instead of the
	// branch-and-bound search (best-first expansion with throughput upper
	// bounds and memory-feasibility lower bounds). Both strategies return
	// the same best candidate; branch-and-bound typically simulates far
	// fewer points.
	NoBnB bool
	// DeviceSpeeds declares the relative compute speed of each physical
	// device (1 = nominal); nil or all-ones means a homogeneous cluster and
	// keeps the search byte-identical to one without the field. Entries map
	// to devices in data-parallel-replica-major order: replica k runs on
	// devices [k·pp, (k+1)·pp). Lists shorter than the device count treat
	// missing entries as nominal.
	DeviceSpeeds []float64
	// Placement selects the partitioning/placement axis (see place.Mode):
	// ModeAuto (the default) explores the co-optimized assignment alongside
	// the uniform baseline on heterogeneous clusters and collapses to the
	// legacy behaviour on homogeneous ones; ModeUniform forces the even
	// split with identity placement; ModeCoOpt forces the co-optimized
	// assignment (useful even on homogeneous clusters, where the DP shifts
	// layers off the embedding- and LM-head-heavy boundary stages).
	Placement place.Mode
}

func (s Space) withDefaults() Space {
	if s.Schemes == nil {
		s.Schemes = []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave}
	}
	if s.Checkpoint == nil {
		s.Checkpoint = []bool{false, true}
	}
	if s.MinPP <= 0 {
		s.MinPP = 4
		if s.MinPP > s.Devices {
			s.MinPP = s.Devices
		}
	}
	if s.MaxPP <= 0 || s.MaxPP > s.Devices {
		s.MaxPP = s.Devices
	}
	if s.MicroBatches == nil {
		s.MicroBatches = []int{1, 2, 4, 8, 16, 32}
	}
	if s.TP <= 0 {
		s.TP = 1
	}
	if s.Chunks <= 0 {
		s.Chunks = 2
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if place.Homogeneous(s.DeviceSpeeds) {
		// All-nominal speed lists normalize to nil so a "1,1,…,1" spec is
		// byte-identical to no spec at all (on workers and coordinators
		// alike — withDefaults runs on both sides of the fleet protocol).
		s.DeviceSpeeds = nil
	}
	if s.Placement == "" {
		s.Placement = place.ModeAuto
	}
	return s
}

// placementModes lists the placement-axis values enumerate appends to each
// grid coordinate. The empty mode is the legacy axis-free point: homogeneous
// clusters under ModeAuto (or ModeUniform, which is the legacy behaviour
// there) produce exactly that, keeping the grid — and with it every key,
// span and stat — byte-identical to a search without the subsystem.
func placementModes(space Space) []place.Mode {
	hetero := !place.Homogeneous(space.DeviceSpeeds)
	switch space.Placement {
	case place.ModeUniform:
		if hetero {
			return []place.Mode{place.ModeUniform}
		}
		return []place.Mode{""}
	case place.ModeCoOpt:
		return []place.Mode{place.ModeCoOpt}
	default:
		if hetero {
			return []place.Mode{place.ModeUniform, place.ModeCoOpt}
		}
		return []place.Mode{""}
	}
}

// Candidate is one evaluated configuration. The paper labels candidates
// x-y-z = scheme-PP-mbs.
type Candidate struct {
	Scheme     pipeline.Scheme
	Ckpt       bool
	PP, DP     int
	MicroBatch int
	Micros     int
	// Throughput is the estimated end-to-end samples/sec (0 when the
	// simulator predicts OOM).
	Throughput float64
	// OOM reports the memory penalty.
	OOM bool
	// Result and Schedule hold the winning simulation artifacts (nil for
	// infeasible candidates).
	Result   *sim.Result
	Schedule *pipeline.Schedule
	// PlaceMode records which placement-axis value produced the candidate;
	// empty for legacy axis-free points. The omitempty tags keep the plan
	// JSON of axis-free candidates byte-identical to the version-1 body.
	PlaceMode place.Mode `json:",omitempty"`
	// Place is the partitioning/placement assignment the candidate was
	// scored with; nil for legacy axis-free points (even split, identity
	// placement, homogeneous speeds).
	Place *place.Assignment `json:",omitempty"`
}

// Label renders the paper's x-y-z naming plus the Mario flag, suffixed with
// the placement mode when the candidate carries one.
func (c Candidate) Label() string {
	tag := "base"
	if c.Ckpt {
		tag = "mario"
	}
	s := fmt.Sprintf("%s-%d-%d(%s)", c.Scheme.Shape(), c.PP, c.MicroBatch, tag)
	if c.PlaceMode != "" {
		s += "+" + string(c.PlaceMode)
	}
	return s
}

// SearchStats counts what one Search call explored — the tuner's own
// observability: how much of the grid was simulated, how much the memory
// penalty rejected, and how much was skipped before simulation. All counters
// are accumulated in canonical grid order, so they are identical for every
// Space.Workers value.
type SearchStats struct {
	// Explored counts candidates that reached the simulator (they appear
	// in the trace).
	Explored int
	// OOMRejected counts explored candidates zeroed by the memory penalty.
	OOMRejected int
	// Pruned counts grid points skipped as structurally impossible before
	// any simulation (indivisible batch, scheme constraints, too few
	// layers).
	Pruned int
	// BoundPruned counts feasible grid points whose admissible throughput
	// upper bound could not beat the best already found, so their
	// simulation was skipped. Zero when Space.NoPrune is set.
	BoundPruned int
	// MemPruned counts feasible grid points whose admissible memory lower
	// bound already exceeds Space.DeviceMem while the incumbent throughput
	// is positive: their simulated throughput is provably zero (Equation
	// 1's OOM penalty), so the branch-and-bound search skips their
	// simulation. Always zero on the grid path (Space.NoPrune or
	// Space.NoBnB).
	MemPruned int
	// Improved counts how many times the best-so-far advanced. On the
	// branch-and-bound path candidates arrive in bound order rather than
	// grid order, so the count differs from the grid walk's (the final
	// best does not).
	Improved int
}

// invariant reports the expansion-order-invariant digest of the stats: the
// structural-prune count and the total number of feasible points, which every
// search strategy (grid, branch-and-bound) partitions the same way between
// explored and pruned. Equivalence tests compare this across strategies.
func (s SearchStats) invariant() (pruned, feasible int) {
	return s.Pruned, s.Explored + s.BoundPruned + s.MemPruned
}

// Tuner runs the grid search using a profiler as the estimator source E and
// the simulator as the performance model F.
type Tuner struct {
	Prof *profile.Profiler
	// DPEfficiency is the per-doubling data-parallel scaling coefficient
	// (0 < eff ≤ 1); values outside that range are clamped: ≤ 0 means the
	// default 0.97, > 1 is capped at perfect scaling.
	DPEfficiency float64
	// MaxRounds bounds the prepose search inside graph.Optimize; 0 means 8.
	MaxRounds int
	// GraphWorkers bounds the goroutines graph.Optimize may use to simulate
	// prepose candidates concurrently (graph.Options.Workers); 0 or 1 keeps
	// the inner loop inline, which is the right choice while Space.Workers
	// already saturates the cores. The optimized schedules are identical for
	// every value.
	GraphWorkers int
	// SplitBackward additionally tries the ZB-H1-style split-backward
	// transformation on each checkpointed candidate, keeping it when the
	// simulator confirms an improvement within the memory budget.
	SplitBackward bool
	// NoDelta disables delta re-simulation inside the graph-pass candidate
	// loop (sim.Options.NoDelta): every accepted-candidate re-sim runs the
	// full fixpoint instead of recomputing only the dirty cone. Results are
	// bit-identical either way — internal/sim/difftest pins that — so the
	// flag is an escape hatch and a benchmarking control, and it
	// deliberately does not enter the memo keys.
	NoDelta bool
	// Progress, when non-nil, is invoked after every explored candidate
	// with that candidate and the best found so far (Fig. 11's curve,
	// streamed). It runs on the merging goroutine in canonical grid order,
	// regardless of Space.Workers.
	Progress func(c Candidate, best Candidate)
	// Span, when live, parents the telemetry of every Search call: each
	// SearchContext records a PhaseSearch subtree under it — one PhasePoint
	// child per grid point with build/bound/graph/sim children. Workers
	// record spans speculatively, but the canonical merge loop attaches
	// them (and trims speculative work) in canonical grid order, so the
	// canonical trace exports are byte-identical for every Space.Workers
	// value. The zero Span disables tracing at zero cost.
	Span telemetry.Span
	// Metrics, when non-nil, receives the search counters as registry
	// series. The grid-outcome counters are incremented from the canonical
	// merge loop (so their totals match SearchStats exactly); memoization
	// and simulation counts are folded in as deltas and — like CacheStats —
	// are not deterministic under Workers > 1.
	Metrics *telemetry.SearchMetrics
	// Sharder, when non-nil, distributes the branch-and-bound expansion
	// across a planning fleet (see fleet.go): the probe pass runs locally,
	// the sorted nodes are dispatched in shard waves, and the merge replays
	// the canonical decisions, so the plan is byte-identical to a local
	// search. Ignored when Space.NoPrune or Space.NoBnB selects the grid
	// walk (those strategies ship no bounds to prune against).
	Sharder ShardDispatcher

	// Stats describes the most recent Search call. It is updated as
	// candidates merge; reading it from another goroutine while Search is
	// running must go through StatsSnapshot.
	Stats SearchStats
	// Fleet describes how the most recent fleet search divided its work
	// (all zero for local searches); read it through FleetSnapshot while a
	// search is running. It is deliberately not part of the plan.
	Fleet FleetStats

	statsMu sync.Mutex
	builds  memo[buildKey, *pipeline.Schedule]
	graphs  memo[graphKey, graphVal]
}

// StatsSnapshot returns a consistent copy of Stats. It is the race-safe way
// for Progress callbacks (or anything else observing a running Search from
// another goroutine) to read the counters.
func (t *Tuner) StatsSnapshot() SearchStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.Stats
}

func (t *Tuner) publishStats(s SearchStats) {
	t.statsMu.Lock()
	t.Stats = s
	t.statsMu.Unlock()
}

func (t *Tuner) dpEff(dp int) float64 {
	eff := t.DPEfficiency
	if eff <= 0 {
		eff = 0.97
	}
	if eff > 1 {
		eff = 1 // perfect scaling is the physical ceiling
	}
	if dp <= 1 {
		return 1
	}
	return math.Pow(eff, math.Log2(float64(dp)))
}

// gridPoint is one canonical grid coordinate of Equation 1. pmode is the
// placement-axis value; the zero value is the legacy axis-free point.
type gridPoint struct {
	scheme pipeline.Scheme
	ckpt   bool
	pp, dp int
	mbs    int
	pmode  place.Mode
}

// pointResult is a worker's (possibly speculative) evaluation of one grid
// point.
type pointResult struct {
	// cand is nil when the point is structurally infeasible or when the
	// worker skipped the simulation.
	cand *Candidate
	// ub is the admissible throughput upper bound; +Inf when unknown.
	ub float64
	// feasible marks points that passed the structural checks.
	feasible bool
	// skipped marks feasible points whose simulation the worker skipped
	// because ub could not beat the merged best at the time.
	skipped bool
	// err carries a context cancellation observed while evaluating the
	// point; the merge loop converts it into an aborted Search. Ordinary
	// evaluation failures (scheme constraints, estimator limits) are never
	// reported here — they stay structural infeasibilities.
	err error
	// span is the detached point span the evaluation recorded into; the
	// merge loop attaches or discards it in canonical order.
	span telemetry.Span
}

// mergedBest publishes the throughput of the best candidate merged so far to
// the workers. It only ever grows, and it always reflects a canonical prefix
// of the grid — the two properties that make worker-side skipping exact (see
// evalPoint).
type mergedBest struct {
	bits atomic.Uint64
	set  atomic.Bool
}

func (m *mergedBest) store(v float64) {
	m.bits.Store(math.Float64bits(v))
	m.set.Store(true)
}

func (m *mergedBest) load() (float64, bool) {
	if !m.set.Load() {
		return 0, false
	}
	return math.Float64frombits(m.bits.Load()), true
}

// enumerate lists the grid in canonical iteration order: scheme-major, then
// checkpointing, then PP (ascending, divisors of D only), then micro-batch
// size — the order the sequential search of the paper walks.
func enumerate(space Space) []gridPoint {
	modes := placementModes(space)
	var points []gridPoint
	for _, b := range space.Schemes {
		for _, a := range space.Checkpoint {
			for pp := space.MinPP; pp <= space.MaxPP; pp++ {
				if space.Devices%pp != 0 {
					continue
				}
				dp := space.Devices / pp
				for _, mbs := range space.MicroBatches {
					for _, pm := range modes {
						points = append(points, gridPoint{scheme: b, ckpt: a, pp: pp, dp: dp, mbs: mbs, pmode: pm})
					}
				}
			}
		}
	}
	return points
}

// Search enumerates the space and returns the best candidate plus the full
// evaluation trace in canonical iteration order (the throughput curve of
// Fig. 11). Grid points are evaluated by Space.Workers goroutines, but the
// merge — best tracking, trace order, stats, Progress callbacks — happens in
// canonical order, so the output is identical for every worker count.
//
// Search never aborts early; use SearchContext to bound or cancel a search.
func (t *Tuner) Search(space Space) (*Candidate, []Candidate, error) {
	return t.SearchContext(context.Background(), space)
}

// SearchContext is Search with cancellation: when ctx is cancelled or its
// deadline passes, the worker pool stops evaluating grid points, the merge
// loop unwinds, and the call returns ctx's error with no candidate and no
// trace. A completed SearchContext is byte-identical to Search for every
// worker count; a cancelled one publishes whatever Stats had accumulated at
// the abort point (they describe a canonical prefix of the grid).
func (t *Tuner) SearchContext(ctx context.Context, space Space) (*Candidate, []Candidate, error) {
	space = space.withDefaults()
	if space.Devices <= 0 || space.GlobalBatch <= 0 {
		return nil, nil, fmt.Errorf("tuner: devices (%d) and global batch (%d) must be positive", space.Devices, space.GlobalBatch)
	}
	points := enumerate(space)
	var stats SearchStats
	t.publishStats(stats)
	t.publishFleet(FleetStats{})

	tracer := t.Span.Tracer()
	search := t.Span.Child(telemetry.PhaseSearch, "")
	search.SetInt("points", int64(len(points)))
	bnb := !space.NoPrune && !space.NoBnB
	fleet := bnb && t.Sharder != nil
	switch {
	case fleet:
		search.SetStr("strategy", "fleet")
	case bnb:
		search.SetStr("strategy", "bnb")
	default:
		search.SetStr("strategy", "grid")
	}
	searchStart := time.Now()
	buildH0, buildM0 := t.builds.hits.Load(), t.builds.misses.Load()
	graphH0, graphM0 := t.graphs.hits.Load(), t.graphs.misses.Load()
	if m := t.Metrics; m != nil {
		m.Searches.Inc()
	}
	defer func() {
		search.End()
		if m := t.Metrics; m != nil {
			m.SearchSeconds.ObserveDuration(time.Since(searchStart))
			m.BuildHits.Add(t.builds.hits.Load() - buildH0)
			m.BuildMisses.Add(t.builds.misses.Load() - buildM0)
			m.GraphHits.Add(t.graphs.hits.Load() - graphH0)
			m.GraphMisses.Add(t.graphs.misses.Load() - graphM0)
		}
	}()

	var best *Candidate
	var trace []Candidate
	var searchErr error
	switch {
	case fleet:
		best, trace, searchErr = t.searchFleet(ctx, space, points, tracer, search, &stats)
	case bnb:
		best, trace, searchErr = t.searchBnB(ctx, space, points, tracer, search, &stats)
	default:
		best, trace, searchErr = t.searchGrid(ctx, space, points, tracer, search, &stats)
	}
	t.publishStats(stats)
	if searchErr != nil {
		return nil, nil, searchErr
	}
	if best == nil {
		return nil, nil, fmt.Errorf("tuner: no feasible configuration in the search space")
	}
	return best, trace, nil
}

// searchGrid is the canonical-order grid walk: every point is evaluated (or
// worker-skipped and confirmed pruned at merge time) in enumeration order.
// It runs when Space.NoPrune or Space.NoBnB disables the branch-and-bound
// strategy, and it is the reference the bnb path is differentially tested
// against.
func (t *Tuner) searchGrid(ctx context.Context, space Space, points []gridPoint, tracer *telemetry.Tracer, search telemetry.Span, stats *SearchStats) (*Candidate, []Candidate, error) {
	var trace []Candidate
	var best *Candidate
	mb := &mergedBest{}

	// merge folds one point's result into the search state, in canonical
	// order. The prune decision is made here, against the canonical
	// best-so-far, never against worker-time state: a worker that skipped
	// its simulation did so against an older (smaller or equal) best, so
	// every worker skip is confirmed by this check. The point's span is
	// attached here too — in canonical order, with speculative children a
	// sequential search would not have recorded trimmed away — which is
	// what makes the canonical trace worker-count independent. A non-nil
	// return aborts the search (cancellation only).
	merge := func(i int, p gridPoint, pr pointResult) error {
		sp := pr.span
		if pr.err != nil {
			if cerr := ctx.Err(); cerr != nil {
				sp.Discard()
				return cerr
			}
			// A stale cancellation from a memo entry another (cancelled)
			// search computed: our own context is live, so re-evaluate.
			sp.Discard()
			pr = t.evalTraced(ctx, space, i, p, nil, nil, tracer)
			sp = pr.span
			if pr.err != nil {
				sp.Discard()
				return pr.err
			}
		}
		prune := func() {
			stats.Pruned++
			t.publishStats(*stats)
			if m := t.Metrics; m != nil {
				m.PointsPruned.Inc()
			}
			sp.SetStr("result", "infeasible")
			sp.AttachTo(search)
		}
		if !pr.feasible {
			prune()
			return nil
		}
		if best != nil && pr.ub <= best.Throughput {
			stats.BoundPruned++
			t.publishStats(*stats)
			if m := t.Metrics; m != nil {
				m.PointsBoundPruned.Inc()
			}
			// The sequential search skips the expensive phases at the bound
			// check, so a speculative full evaluation keeps only the
			// build/bound prefix in the canonical trace.
			sp.RetainChildren(telemetry.PhaseBuild, telemetry.PhaseBound)
			sp.SetStr("result", "bound_pruned")
			sp.AttachTo(search)
			return nil
		}
		c := pr.cand
		if c == nil {
			// A worker skip that the canonical best cannot justify is
			// impossible (mergedBest never exceeds the canonical
			// best-so-far); evaluate inline as insurance so the result
			// stays exact even if that invariant is ever broken.
			sp.Discard()
			forced := t.evalTraced(ctx, space, i, p, nil, nil, tracer)
			sp = forced.span
			if forced.err != nil {
				sp.Discard()
				return forced.err
			}
			c = forced.cand
			if c == nil {
				prune()
				return nil
			}
		}
		stats.Explored++
		if c.OOM {
			stats.OOMRejected++
		}
		trace = append(trace, *c)
		improved := best == nil || c.Throughput > best.Throughput
		if improved {
			cc := *c
			best = &cc
			stats.Improved++
			mb.store(best.Throughput)
		}
		t.publishStats(*stats)
		if m := t.Metrics; m != nil {
			m.PointsExplored.Inc()
			if c.OOM {
				m.PointsOOM.Inc()
			}
			if improved {
				m.PointsImproved.Inc()
			}
		}
		if c.OOM {
			sp.SetStr("result", "oom")
		} else {
			sp.SetStr("result", "explored")
		}
		sp.SetFloat("throughput", c.Throughput)
		if improved {
			sp.SetBool("improved", true)
		}
		sp.AttachTo(search)
		if t.Progress != nil {
			t.Progress(*c, *best)
		}
		return nil
	}

	var searchErr error
	if space.Workers <= 1 || len(points) <= 1 {
		eng := &sim.Simulator{}
		sims0 := eng.Sims
		for i, p := range points {
			if err := ctx.Err(); err != nil {
				searchErr = err
				break
			}
			if err := merge(i, p, t.evalTraced(ctx, space, i, p, mb, eng, tracer)); err != nil {
				searchErr = err
				break
			}
		}
		t.Metrics.AddSims(eng.Sims - sims0)
	} else {
		workers := space.Workers
		if workers > len(points) {
			workers = len(points)
		}
		results := make([]pointResult, len(points))
		ready := make([]chan struct{}, len(points))
		for i := range ready {
			ready[i] = make(chan struct{})
		}
		jobs := make(chan int, len(points))
		for i := range points {
			jobs <- i
		}
		close(jobs)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng := &sim.Simulator{} // per-worker engine: a Simulator is not goroutine-safe
				for i := range jobs {
					if err := ctx.Err(); err != nil {
						// Cancelled: publish the abort instead of evaluating
						// so the merge loop can unwind. Every dequeued job
						// still closes its ready channel — the merger must
						// never block on a skipped point.
						results[i] = pointResult{err: err}
						close(ready[i])
						continue
					}
					results[i] = t.evalTraced(ctx, space, i, points[i], mb, eng, tracer)
					close(ready[i])
				}
				t.Metrics.AddSims(eng.Sims)
			}()
		}
		for i := range points {
			<-ready[i]
			if searchErr == nil {
				searchErr = merge(i, points[i], results[i])
			}
		}
		wg.Wait()
	}

	return best, trace, searchErr
}

// pointKey renders a grid point's canonical span key: the zero-padded
// canonical grid index plus the paper's x-y-z candidate label. The key is a
// pure function of the enumeration, so span identities never depend on
// which worker evaluated the point.
func pointKey(i int, p gridPoint) string {
	tag := "base"
	if p.ckpt {
		tag = "mario"
	}
	s := fmt.Sprintf("%04d %s-%d-%d(%s)", i, p.scheme.Shape(), p.pp, p.mbs, tag)
	if p.pmode != "" {
		s += "+" + string(p.pmode)
	}
	return s
}

// buildFor memoizes (and freezes) the base schedule of a grid point; both
// the full evaluation and the branch-and-bound probe go through it, so a
// point is built at most once per Tuner regardless of strategy.
func (t *Tuner) buildFor(space Space, p gridPoint, micros int) (*pipeline.Schedule, error) {
	bk := buildKey{scheme: p.scheme, devices: p.pp, micros: micros, chunks: space.Chunks}
	return t.builds.do(bk, func() (*pipeline.Schedule, error) {
		s, err := scheme.Build(p.scheme, scheme.Config{Devices: p.pp, Micros: micros, Chunks: space.Chunks})
		if err != nil {
			return nil, err
		}
		// The memoized schedule is cloned by many grid points, possibly
		// concurrently; freezing it makes those first Clones read-only on
		// the shared copy-on-write marks.
		s.Freeze()
		return s, nil
	})
}

// assignmentFor computes a grid point's partitioning/placement assignment.
// Legacy axis-free points (pmode "") get nil; ModeUniform gets the even split
// with identity placement carrying the per-rank speeds; ModeCoOpt runs the
// place.CoOptimize fixpoint over the per-layer cost model (an estimator fit
// with one stage per layer, so the embedding and LM-head extras land on the
// first and last layer). The result is a pure function of the point and the
// space, so probe and evaluation agree and re-computation is race-free.
func (t *Tuner) assignmentFor(space Space, p gridPoint, sched *pipeline.Schedule) (*place.Assignment, error) {
	if p.pmode == "" {
		return nil, nil
	}
	pl := sched.Placement
	rankSpeed := place.RankSpeeds(space.DeviceSpeeds, pl.NumDevices(), p.dp)
	if p.pmode == place.ModeUniform {
		return place.Uniform(t.Prof.Model.Layers, pl, rankSpeed), nil
	}
	layers := t.Prof.Model.Layers
	perLayer := make([]int, layers)
	for i := range perLayer {
		perLayer[i] = 1
	}
	layerEst, err := t.Prof.EstimatorForPartition(perLayer, p.mbs, space.TP)
	if err != nil {
		return nil, err
	}
	return place.CoOptimize(place.NewLayerModel(layerEst), pl, rankSpeed, place.Options{
		MemCap:       space.DeviceMem,
		FrameworkMem: layerEst.FrameworkMem,
		InFlight:     inFlightPerStage(sched),
		BufBytes:     layerEst.ActP2PBytes + layerEst.GradP2PBytes,
	})
}

// inFlightPerStage counts, per stage, the forwards a device issues before the
// stage's first backward in the freshly built schedule — the retained
// micro-batch high water the checkpoint pass turns into stashes. The
// partitioner's memory cap multiplies the per-micro stash by this depth.
func inFlightPerStage(sched *pipeline.Schedule) []int {
	S := sched.NumStages()
	out := make([]int, S)
	fw := make([]int, S)
	done := make([]bool, S)
	for _, list := range sched.Lists {
		for i := range fw {
			fw[i], done[i] = 0, false
		}
		for _, in := range list {
			switch in.Kind {
			case pipeline.Forward, pipeline.CkptForward:
				if !done[in.Stage] {
					fw[in.Stage]++
				}
			case pipeline.Backward, pipeline.BackwardInput:
				done[in.Stage] = true
			}
		}
		for st, n := range fw {
			if n > out[st] {
				out[st] = n
			}
		}
	}
	for st, n := range out {
		if n < 1 {
			out[st] = 1
		}
	}
	return out
}

// estimatorFor builds the estimator a grid point is scored with. Legacy
// axis-free points keep the uniform-split estimator untouched; placement-axis
// points get the partitioned estimator steered by the assignment's layer
// split, with the per-rank speeds attached so the simulator (and the bounds)
// scale compute on slow ranks.
func (t *Tuner) estimatorFor(space Space, p gridPoint, sched *pipeline.Schedule, stages int) (*cost.Estimator, *place.Assignment, error) {
	asg, err := t.assignmentFor(space, p, sched)
	if err != nil {
		return nil, nil, err
	}
	if asg == nil {
		est, err := t.Prof.EstimatorFor(stages, p.mbs, space.TP)
		return est, nil, err
	}
	est, err := t.Prof.EstimatorForPartition(asg.LayersPerStage, p.mbs, space.TP)
	if err != nil {
		return nil, nil, err
	}
	est.DeviceSpeed = asg.RankSpeed
	return est, asg, nil
}

// evalTraced wraps evalPoint with a detached point span that the canonical
// merge loop later attaches (in canonical order) or discards. i is the
// point's canonical grid index.
func (t *Tuner) evalTraced(ctx context.Context, space Space, i int, p gridPoint, mb *mergedBest, eng *sim.Simulator, tracer *telemetry.Tracer) pointResult {
	sp := tracer.Detached(telemetry.PhasePoint, pointKey(i, p))
	pr := t.evalPoint(ctx, space, p, mb, eng, sp)
	sp.End()
	pr.span = sp
	return pr
}

// evalPoint scores a single grid point. Structurally impossible points
// (indivisible batch, scheme constraints, too few layers) come back
// infeasible; feasible points carry an admissible throughput upper bound and
// — unless the bound already loses against the merged best — a fully
// simulated candidate (zero-throughput for OOM points).
//
// mb may be nil to force a full evaluation. When set, the worker skips the
// simulation if ub ≤ the merged best: the merged best only grows and is
// always the best over a canonical prefix that the merger has not yet
// extended past this point, so the merger's own prune check is then
// guaranteed to discard the point too.
//
// eng is the caller's reusable simulation engine (one per worker goroutine);
// nil falls back to the package-level Simulate.
//
// ctx bounds the slow part of the evaluation (the graph-tuner run); a
// cancelled context comes back as pointResult.err, never as a fake
// infeasibility.
//
// sp is the point's telemetry span (the zero Span when tracing is off):
// evalPoint records build/bound/graph/sim child spans under it, tagging the
// memoized phases with their memo keys so Snapshot can normalize hit/miss
// attribution into canonical order.
func (t *Tuner) evalPoint(ctx context.Context, space Space, p gridPoint, mb *mergedBest, eng *sim.Simulator, sp telemetry.Span) pointResult {
	if err := ctx.Err(); err != nil {
		return pointResult{err: err}
	}
	infeasible := pointResult{ub: math.Inf(1)}
	if space.GlobalBatch%(p.mbs*p.dp) != 0 {
		return infeasible
	}
	micros := space.GlobalBatch / (p.mbs * p.dp)
	if micros < 1 {
		return infeasible
	}
	stages := p.pp
	if p.scheme == pipeline.SchemeInterleave {
		stages = p.pp * space.Chunks
	}
	if t.Prof.Model.Layers < stages {
		return infeasible
	}
	bk := buildKey{scheme: p.scheme, devices: p.pp, micros: micros, chunks: space.Chunks}
	bs := sp.Child(telemetry.PhaseBuild, "")
	bs.Memo(fmt.Sprintf("%s|pp%d|u%d|c%d", p.scheme.Shape(), p.pp, micros, space.Chunks))
	sched, err := t.buildFor(space, p, micros)
	bs.End()
	if err != nil {
		return infeasible // scheme constraint (odd Chimera, indivisible Interleave, …)
	}
	est, asg, err := t.estimatorFor(space, p, sched, stages)
	if err != nil {
		return infeasible
	}

	out := pointResult{feasible: true, ub: math.Inf(1)}
	if !space.NoPrune {
		bnd := sp.Child(telemetry.PhaseBound, "")
		out.ub = t.upperBound(sched, est, p)
		bnd.SetFloat("ub", out.ub)
		bnd.End()
		if mb != nil {
			if bb, ok := mb.load(); ok && out.ub <= bb {
				out.skipped = true
				return out
			}
		}
	}

	simOpts := sim.Options{DP: p.dp, MemLimit: space.DeviceMem, NoDelta: t.NoDelta}
	cand := &Candidate{Scheme: p.scheme, Ckpt: p.ckpt, PP: p.pp, DP: p.dp, MicroBatch: p.mbs, Micros: micros,
		PlaceMode: p.pmode, Place: asg}
	var res *sim.Result
	if p.ckpt {
		maxRounds := t.MaxRounds
		if maxRounds <= 0 {
			maxRounds = 8
		}
		gk := graphKey{bk: bk, mbs: p.mbs, dp: p.dp, tp: space.TP,
			memLimit: space.DeviceMem, maxRounds: maxRounds, split: t.SplitBackward,
			place: asg.Key()}
		memoTag := fmt.Sprintf("%s|pp%d|u%d|c%d|mbs%d|dp%d|tp%d|mem%g|r%d|split%t",
			p.scheme.Shape(), p.pp, micros, space.Chunks, p.mbs, p.dp, space.TP,
			space.DeviceMem, maxRounds, t.SplitBackward)
		if pk := asg.Key(); pk != "" {
			memoTag += "|pl" + pk
		}
		gs := sp.Child(telemetry.PhaseGraph, "")
		gs.Memo(memoTag)
		gv, err := t.graphs.do(gk, func() (graphVal, error) {
			// The round spans land under this point's graph span; if a
			// canonically earlier point shares the memo key, Snapshot moves
			// them there (the sequential attribution).
			gopts := graph.Options{Estimator: est, Sim: simOpts, MaxRounds: maxRounds,
				Workers: t.GraphWorkers, Span: gs, Metrics: t.Metrics}
			opt, r, err := graph.OptimizeContext(ctx, sched, gopts)
			if err != nil {
				return graphVal{}, err
			}
			if t.SplitBackward {
				if split, sr, err := graph.SplitBackward(opt, gopts); err == nil &&
					sr.Total < r.Total && !(simOpts.MemLimit > 0 && sr.OOM) {
					opt, r = split, sr
				}
			}
			// Frozen for the same reason as the build memo above.
			opt.Freeze()
			return graphVal{sched: opt, res: r}, nil
		})
		gs.End()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return pointResult{err: err}
			}
			return infeasible
		}
		cand.Schedule, res = gv.sched.Clone(), gv.res
	} else {
		ss := sp.Child(telemetry.PhaseSim, "")
		var r *sim.Result
		var err error
		if eng != nil {
			r, err = eng.Simulate(sched, est, simOpts)
		} else {
			r, err = sim.Simulate(sched, est, simOpts)
			t.Metrics.AddSims(1) // ephemeral engine: its counter dies with it
		}
		ss.End()
		if err != nil {
			return infeasible
		}
		cand.Schedule, res = sched.Clone(), r
	}
	cand.Result = res
	if res.OOM {
		cand.OOM = true
		cand.Throughput = 0 // Equation 1's memory penalty
	} else {
		cand.Throughput = res.SamplesPerSec * t.dpEff(p.dp)
	}
	out.cand = cand
	return out
}

// upperBound returns an admissible estimate of the point's throughput: the
// samples per iteration divided by a lower bound on the makespan, times the
// DP efficiency. The makespan bound is the busiest device's serial
// forward+backward compute time in the freshly built schedule; split-base
// schemes (ZB-H1, DualPipe-D) contribute their BackwardInput and
// BackwardWeight halves at exactly the simulator's durations. Every
// transformation the tuner may later apply — checkpoint passes (which add
// recomputes), prepose (which reorders), split backward (which splits one
// backward into two whose durations sum to at least the original) — only
// adds or reorders device work, and the simulator never finishes a device
// before its serial compute sum, so the true simulated throughput of this
// point can never exceed the bound.
func (t *Tuner) upperBound(sched *pipeline.Schedule, est *cost.Estimator, p gridPoint) float64 {
	var lb float64
	for d, list := range sched.Lists {
		// Per-rank compute scaling: SlowOf is exactly 1 on homogeneous
		// estimators (bit-exact multiplication), and on heterogeneous ones
		// the scaled terms match the simulator's durations bit-for-bit
		// (sim.ComputeBase uses the same expressions), keeping the bound
		// admissible.
		slow := est.SlowOf(d)
		var busy float64
		for _, in := range list {
			switch in.Kind {
			case pipeline.Forward, pipeline.CkptForward:
				busy += est.LaunchOverhead + est.FwTime[in.Stage]*slow
			case pipeline.Backward:
				busy += est.LaunchOverhead + est.BwTime[in.Stage]*slow
			case pipeline.BackwardInput:
				busy += est.LaunchOverhead + est.BwTime[in.Stage]*est.BwSplitRatio*slow
			case pipeline.BackwardWeight:
				busy += est.LaunchOverhead + est.BwTime[in.Stage]*(1-est.BwSplitRatio)*slow
			}
		}
		if busy > lb {
			lb = busy
		}
	}
	if lb <= 0 {
		return math.Inf(1)
	}
	samples := float64(sched.Micros * p.mbs * p.dp)
	return samples / lb * t.dpEff(p.dp)
}

// Rank returns the trace sorted by descending throughput (stable on labels
// for determinism).
func Rank(trace []Candidate) []Candidate {
	out := append([]Candidate(nil), trace...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Throughput != out[j].Throughput {
			return out[i].Throughput > out[j].Throughput
		}
		return out[i].Label() < out[j].Label()
	})
	return out
}
