// Package tuner implements Mario's automatic schedule tuner (§5.3): a grid
// search over Equation 1's parameters — checkpointing on/off, pipeline
// scheme, PP dimension, DP dimension, micro-batch size — maximising the
// simulator-estimated training throughput under the device-memory
// constraint. Configurations that the simulator predicts to exceed device
// memory score zero (the paper's OOM penalty), and a data-parallel
// efficiency coefficient models DP scaling.
package tuner

import (
	"fmt"
	"math"
	"sort"

	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/profile"
	"mario/internal/scheme"
	"mario/internal/sim"
)

// Space is the search space of Equation 1.
type Space struct {
	// Devices is the total accelerator count D.
	Devices int
	// GlobalBatch is the fixed global batch size (samples per iteration).
	GlobalBatch int
	// Schemes lists the candidate pipeline schemes b; nil means {V, X, W}.
	Schemes []pipeline.Scheme
	// Checkpoint lists the candidate values of a; nil means {false, true}.
	Checkpoint []bool
	// MinPP and MaxPP bound the pipeline-parallel dimension; zero values
	// default to the paper's 4 ≤ pp ≤ D.
	MinPP, MaxPP int
	// MicroBatches lists candidate micro-batch sizes; nil means powers of
	// two up to 32.
	MicroBatches []int
	// TP is the fixed tensor-parallel degree (Equation 1 keeps it
	// constant); 0 means 1. TP devices are in addition to Devices.
	TP int
	// DeviceMem is the per-device memory budget dmem in bytes; zero
	// disables the OOM penalty.
	DeviceMem float64
	// Chunks is the Interleave model-chunk count; 0 means 2.
	Chunks int
}

func (s Space) withDefaults() Space {
	if s.Schemes == nil {
		s.Schemes = []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeChimera, pipeline.SchemeInterleave}
	}
	if s.Checkpoint == nil {
		s.Checkpoint = []bool{false, true}
	}
	if s.MinPP <= 0 {
		s.MinPP = 4
		if s.MinPP > s.Devices {
			s.MinPP = s.Devices
		}
	}
	if s.MaxPP <= 0 || s.MaxPP > s.Devices {
		s.MaxPP = s.Devices
	}
	if s.MicroBatches == nil {
		s.MicroBatches = []int{1, 2, 4, 8, 16, 32}
	}
	if s.TP <= 0 {
		s.TP = 1
	}
	if s.Chunks <= 0 {
		s.Chunks = 2
	}
	return s
}

// Candidate is one evaluated configuration. The paper labels candidates
// x-y-z = scheme-PP-mbs.
type Candidate struct {
	Scheme     pipeline.Scheme
	Ckpt       bool
	PP, DP     int
	MicroBatch int
	Micros     int
	// Throughput is the estimated end-to-end samples/sec (0 when the
	// simulator predicts OOM).
	Throughput float64
	// OOM reports the memory penalty.
	OOM bool
	// Result and Schedule hold the winning simulation artifacts (nil for
	// infeasible candidates).
	Result   *sim.Result
	Schedule *pipeline.Schedule
}

// Label renders the paper's x-y-z naming plus the Mario flag.
func (c Candidate) Label() string {
	tag := "base"
	if c.Ckpt {
		tag = "mario"
	}
	return fmt.Sprintf("%s-%d-%d(%s)", c.Scheme.Shape(), c.PP, c.MicroBatch, tag)
}

// SearchStats counts what one Search call explored — the tuner's own
// observability: how much of the grid was simulated, how much the memory
// penalty rejected, and how much was structurally impossible.
type SearchStats struct {
	// Explored counts candidates that reached the simulator (they appear
	// in the trace).
	Explored int
	// OOMRejected counts explored candidates zeroed by the memory penalty.
	OOMRejected int
	// Pruned counts grid points skipped before simulation (indivisible
	// batch, scheme constraints, too few layers).
	Pruned int
	// Improved counts how many times the best-so-far advanced.
	Improved int
}

// Tuner runs the grid search using a profiler as the estimator source E and
// the simulator as the performance model F.
type Tuner struct {
	Prof *profile.Profiler
	// DPEfficiency is the per-doubling data-parallel scaling coefficient
	// (0 < eff ≤ 1); 0 means 0.97.
	DPEfficiency float64
	// MaxRounds bounds the prepose search inside graph.Optimize; 0 means 8.
	MaxRounds int
	// SplitBackward additionally tries the ZB-H1-style split-backward
	// transformation on each checkpointed candidate, keeping it when the
	// simulator confirms an improvement within the memory budget.
	SplitBackward bool
	// Progress, when non-nil, is invoked after every explored candidate
	// with that candidate and the best found so far (Fig. 11's curve,
	// streamed).
	Progress func(c Candidate, best Candidate)

	// Stats describes the most recent Search call.
	Stats SearchStats
}

func (t *Tuner) dpEff(dp int) float64 {
	eff := t.DPEfficiency
	if eff <= 0 {
		eff = 0.97
	}
	if dp <= 1 {
		return 1
	}
	return math.Pow(eff, math.Log2(float64(dp)))
}

// Search enumerates the space and returns the best candidate plus the full
// evaluation trace in iteration order (the throughput curve of Fig. 11).
func (t *Tuner) Search(space Space) (*Candidate, []Candidate, error) {
	space = space.withDefaults()
	if space.Devices <= 0 || space.GlobalBatch <= 0 {
		return nil, nil, fmt.Errorf("tuner: devices (%d) and global batch (%d) must be positive", space.Devices, space.GlobalBatch)
	}
	t.Stats = SearchStats{}
	var trace []Candidate
	var best *Candidate
	for _, b := range space.Schemes {
		for _, a := range space.Checkpoint {
			for pp := space.MinPP; pp <= space.MaxPP; pp++ {
				if space.Devices%pp != 0 {
					continue
				}
				dp := space.Devices / pp
				for _, mbs := range space.MicroBatches {
					c := t.evaluate(space, b, a, pp, dp, mbs)
					if c == nil {
						t.Stats.Pruned++
						continue
					}
					t.Stats.Explored++
					if c.OOM {
						t.Stats.OOMRejected++
					}
					trace = append(trace, *c)
					if best == nil || c.Throughput > best.Throughput {
						cc := *c
						best = &cc
						t.Stats.Improved++
					}
					if t.Progress != nil {
						t.Progress(*c, *best)
					}
				}
			}
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("tuner: no feasible configuration in the search space")
	}
	return best, trace, nil
}

// evaluate scores a single grid point; it returns nil for structurally
// impossible points (indivisible batch, scheme constraints, too few layers)
// and a zero-throughput candidate for OOM points.
func (t *Tuner) evaluate(space Space, b pipeline.Scheme, ckpt bool, pp, dp, mbs int) *Candidate {
	if space.GlobalBatch%(mbs*dp) != 0 {
		return nil
	}
	micros := space.GlobalBatch / (mbs * dp)
	if micros < 1 {
		return nil
	}
	cfg := scheme.Config{Devices: pp, Micros: micros, Chunks: space.Chunks}
	stages := pp
	if b == pipeline.SchemeInterleave {
		stages = pp * space.Chunks
	}
	if t.Prof.Model.Layers < stages {
		return nil
	}
	sched, err := scheme.Build(b, cfg)
	if err != nil {
		return nil // scheme constraint (odd Chimera, indivisible Interleave, …)
	}
	est, err := t.Prof.EstimatorFor(stages, mbs, space.TP)
	if err != nil {
		return nil
	}
	simOpts := sim.Options{DP: dp, MemLimit: space.DeviceMem}
	cand := &Candidate{Scheme: b, Ckpt: ckpt, PP: pp, DP: dp, MicroBatch: mbs, Micros: micros}
	var res *sim.Result
	if ckpt {
		maxRounds := t.MaxRounds
		if maxRounds <= 0 {
			maxRounds = 8
		}
		gopts := graph.Options{Estimator: est, Sim: simOpts, MaxRounds: maxRounds}
		opt, r, err := graph.Optimize(sched, gopts)
		if err != nil {
			return nil
		}
		sched, res = opt, r
		if t.SplitBackward {
			if split, sr, err := graph.SplitBackward(sched, gopts); err == nil &&
				sr.Total < res.Total && !(simOpts.MemLimit > 0 && sr.OOM) {
				sched, res = split, sr
			}
		}
	} else {
		r, err := sim.Simulate(sched, est, simOpts)
		if err != nil {
			return nil
		}
		res = r
	}
	cand.Result = res
	cand.Schedule = sched
	if res.OOM {
		cand.OOM = true
		cand.Throughput = 0 // Equation 1's memory penalty
		return cand
	}
	cand.Throughput = res.SamplesPerSec * t.dpEff(dp)
	return cand
}

// Rank returns the trace sorted by descending throughput (stable on labels
// for determinism).
func Rank(trace []Candidate) []Candidate {
	out := append([]Candidate(nil), trace...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Throughput != out[j].Throughput {
			return out[i].Throughput > out[j].Throughput
		}
		return out[i].Label() < out[j].Label()
	})
	return out
}
