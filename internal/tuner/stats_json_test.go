package tuner

import (
	"encoding/json"
	"testing"
)

// TestSearchStatsJSONFields pins the wire names of SearchStats. The struct
// rides inside the marshaled mario.Plan, which the planning service caches
// and clients decode with LoadPlan — renaming a field (or forgetting to add
// a new counter here) silently zeroes it for every consumer.
func TestSearchStatsJSONFields(t *testing.T) {
	st := SearchStats{
		Explored:    1,
		OOMRejected: 2,
		Pruned:      3,
		BoundPruned: 4,
		MemPruned:   5,
		Improved:    6,
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"Explored":1,"OOMRejected":2,"Pruned":3,"BoundPruned":4,"MemPruned":5,"Improved":6}`
	if string(data) != want {
		t.Errorf("SearchStats JSON = %s, want %s", data, want)
	}

	var back SearchStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Errorf("round trip = %+v, want %+v", back, st)
	}
}
