package tuner

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/profile"
)

// detSpace is a grid large enough to exercise every scheme, both checkpoint
// settings, several PP/mbs combinations, OOM penalties and the upper-bound
// prune.
func detSpace(workers int) Space {
	return Space{
		Devices:      8,
		GlobalBatch:  64,
		MicroBatches: []int{1, 2, 4},
		DeviceMem:    cost.A100_40G.MemBytes,
		Workers:      workers,
	}
}

// searchRun captures everything a Search emits, rendered to comparable form.
type searchRun struct {
	best     string
	trace    []string
	progress []string
	stats    SearchStats
}

// candString renders a candidate byte-exactly: label, the raw float bits of
// the throughput, the OOM flag, the simulated makespan and per-device peaks,
// and the full schedule text.
func candString(c Candidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s micros=%d thpt=%016x oom=%v", c.Label(), c.Micros, math.Float64bits(c.Throughput), c.OOM)
	if c.Result != nil {
		fmt.Fprintf(&b, " total=%016x peaks=", math.Float64bits(c.Result.Total))
		for _, p := range c.Result.PeakMem {
			fmt.Fprintf(&b, "%016x,", math.Float64bits(p))
		}
	}
	if c.Schedule != nil {
		b.WriteByte('\n')
		b.WriteString(c.Schedule.String())
	}
	return b.String()
}

func runSearch(t *testing.T, workers int) searchRun {
	return runSearchGW(t, workers, 0)
}

// runSearchGW additionally sets the graph tuner's inner worker count.
func runSearchGW(t *testing.T, workers, graphWorkers int) searchRun {
	t.Helper()
	tn := &Tuner{
		Prof: &profile.Profiler{
			Model:   cost.LLaMA2_3B,
			HW:      cost.A100_40G,
			Spec:    profile.DefaultMachine,
			Devices: 4,
			Iters:   4,
		},
		MaxRounds:    2,
		GraphWorkers: graphWorkers,
	}
	var run searchRun
	tn.Progress = func(c Candidate, best Candidate) {
		run.progress = append(run.progress, fmt.Sprintf("%s|%016x -> %s|%016x",
			c.Label(), math.Float64bits(c.Throughput), best.Label(), math.Float64bits(best.Throughput)))
	}
	best, trace, err := tn.Search(detSpace(workers))
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	run.best = candString(*best)
	for _, c := range trace {
		run.trace = append(run.trace, candString(c))
	}
	run.stats = tn.Stats
	return run
}

// TestSearchDeterministicAcrossWorkers is the PR's core guarantee: the best
// candidate, the full trace in order, the Progress callback sequence and the
// SearchStats are identical for Workers ∈ {1, 4, GOMAXPROCS}.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	base := runSearch(t, 1)
	if base.stats.Explored == 0 {
		t.Fatal("sequential baseline explored nothing")
	}
	if base.stats.BoundPruned == 0 {
		t.Log("note: no points were bound-pruned in the baseline grid")
	}
	workerSet := []int{4, runtime.GOMAXPROCS(0)}
	for _, w := range workerSet {
		got := runSearch(t, w)
		if got.stats != base.stats {
			t.Errorf("workers=%d: stats %+v, want %+v", w, got.stats, base.stats)
		}
		if got.best != base.best {
			t.Errorf("workers=%d: best differs\n got: %s\nwant: %s", w, got.best, base.best)
		}
		if len(got.trace) != len(base.trace) {
			t.Fatalf("workers=%d: trace length %d, want %d", w, len(got.trace), len(base.trace))
		}
		for i := range got.trace {
			if got.trace[i] != base.trace[i] {
				t.Errorf("workers=%d: trace[%d] differs\n got: %s\nwant: %s", w, i, got.trace[i], base.trace[i])
				break
			}
		}
		if len(got.progress) != len(base.progress) {
			t.Fatalf("workers=%d: %d progress callbacks, want %d", w, len(got.progress), len(base.progress))
		}
		for i := range got.progress {
			if got.progress[i] != base.progress[i] {
				t.Errorf("workers=%d: progress[%d] = %q, want %q", w, i, got.progress[i], base.progress[i])
				break
			}
		}
	}
}

// TestSearchDeterministicAcrossGraphWorkers: the graph tuner's inner
// prepose-candidate worker pool must be equally invisible — a Search that
// simulates candidates on 4 goroutines per Optimize call emits exactly the
// bytes of the inline one.
func TestSearchDeterministicAcrossGraphWorkers(t *testing.T) {
	base := runSearchGW(t, 2, 0)
	got := runSearchGW(t, 2, 4)
	if got.stats != base.stats {
		t.Errorf("graphWorkers=4: stats %+v, want %+v", got.stats, base.stats)
	}
	if got.best != base.best {
		t.Errorf("graphWorkers=4: best differs\n got: %s\nwant: %s", got.best, base.best)
	}
	if len(got.trace) != len(base.trace) {
		t.Fatalf("graphWorkers=4: trace length %d, want %d", len(got.trace), len(base.trace))
	}
	for i := range got.trace {
		if got.trace[i] != base.trace[i] {
			t.Errorf("graphWorkers=4: trace[%d] differs\n got: %s\nwant: %s", i, got.trace[i], base.trace[i])
			break
		}
	}
	if len(got.progress) != len(base.progress) {
		t.Fatalf("graphWorkers=4: %d progress callbacks, want %d", len(got.progress), len(base.progress))
	}
	for i := range got.progress {
		if got.progress[i] != base.progress[i] {
			t.Errorf("graphWorkers=4: progress[%d] = %q, want %q", i, got.progress[i], base.progress[i])
			break
		}
	}
}

// TestSearchPruneEquivalence: pruning must never change the winner, only the
// amount of work — the bound is admissible, so the best candidate and the
// improvement path are those of the exhaustive search.
func TestSearchPruneEquivalence(t *testing.T) {
	mk := func() *Tuner { return newTuner() }
	sp := detSpace(1)
	pruned := mk()
	bestP, traceP, err := pruned.Search(sp)
	if err != nil {
		t.Fatal(err)
	}
	sp.NoPrune = true
	full := mk()
	bestF, traceF, err := full.Search(sp)
	if err != nil {
		t.Fatal(err)
	}
	if candString(*bestP) != candString(*bestF) {
		t.Errorf("prune changed the winner:\n got: %s\nwant: %s", candString(*bestP), candString(*bestF))
	}
	if full.Stats.BoundPruned != 0 {
		t.Errorf("NoPrune search still bound-pruned %d points", full.Stats.BoundPruned)
	}
	if pruned.Stats.Explored+pruned.Stats.BoundPruned != full.Stats.Explored {
		t.Errorf("explored(%d)+boundPruned(%d) != exhaustive explored(%d)",
			pruned.Stats.Explored, pruned.Stats.BoundPruned, full.Stats.Explored)
	}
	if len(traceP) > len(traceF) {
		t.Errorf("pruned trace (%d) longer than exhaustive trace (%d)", len(traceP), len(traceF))
	}
	// The pruned trace is a subsequence of the exhaustive one.
	j := 0
	for _, c := range traceP {
		s := candString(c)
		for j < len(traceF) && candString(traceF[j]) != s {
			j++
		}
		if j == len(traceF) {
			t.Fatalf("pruned-trace candidate %s not found in exhaustive trace order", c.Label())
		}
		j++
	}
}

// TestStatsSnapshotRaceSafe reads the search counters from another goroutine
// while a parallel Search is running; under -race this is the regression
// test for the PR-1 Progress/Stats data race.
func TestStatsSnapshotRaceSafe(t *testing.T) {
	tn := newTuner()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var polls int
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				s := tn.StatsSnapshot()
				if s.Explored < 0 {
					t.Error("impossible snapshot")
					return
				}
				polls++
			}
		}
	}()
	if _, _, err := tn.Search(detSpace(4)); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if polls == 0 {
		t.Error("snapshot goroutine never ran")
	}
	final := tn.StatsSnapshot()
	if final != tn.Stats {
		t.Errorf("snapshot %+v differs from settled Stats %+v", final, tn.Stats)
	}
}

// TestCacheSharing: the schedule-build cache is shared between the
// checkpointed and plain variants of a grid point and across Search calls,
// and cache contents never leak between unrelated keys.
func TestCacheSharing(t *testing.T) {
	tn := newTuner()
	sp := Space{
		Devices:      8,
		GlobalBatch:  32,
		MicroBatches: []int{2},
		MinPP:        8,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B},
		DeviceMem:    cost.A100_40G.MemBytes,
		Workers:      1,
		NoPrune:      true,
	}
	if _, _, err := tn.Search(sp); err != nil {
		t.Fatal(err)
	}
	hits, misses := tn.CacheStats()
	// ckpt ∈ {false, true} share one build: 1 miss + 1 hit on the build
	// cache, 1 miss on the graph cache.
	if hits < 1 || misses < 1 {
		t.Errorf("expected build-cache sharing, got hits=%d misses=%d", hits, misses)
	}
	// A second identical search is served from both caches.
	_, missesBefore := tn.CacheStats()
	if _, _, err := tn.Search(sp); err != nil {
		t.Fatal(err)
	}
	_, missesAfter := tn.CacheStats()
	if missesAfter != missesBefore {
		t.Errorf("repeat search recomputed %d cached entries", missesAfter-missesBefore)
	}
}
