package tuner

import (
	"math"
	"runtime"
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/profile"
)

func newTuner() *Tuner {
	return &Tuner{
		Prof: &profile.Profiler{
			Model:   cost.LLaMA2_3B,
			HW:      cost.A100_40G,
			Spec:    profile.DefaultMachine,
			Devices: 4,
			Iters:   4,
		},
		MaxRounds: 3,
	}
}

func TestSearchFindsFeasibleBest(t *testing.T) {
	tn := newTuner()
	best, trace, err := tn.Search(Space{
		Devices:      8,
		GlobalBatch:  32,
		MicroBatches: []int{1, 2},
		DeviceMem:    cost.A100_40G.MemBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Throughput <= 0 {
		t.Fatalf("best candidate has throughput %v", best.Throughput)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	for _, c := range trace {
		if c.Throughput > best.Throughput {
			t.Errorf("trace candidate %s (%v) beats reported best %s (%v)", c.Label(), c.Throughput, best.Label(), best.Throughput)
		}
		if c.PP*c.DP != 8 {
			t.Errorf("%s: pp*dp = %d, want 8", c.Label(), c.PP*c.DP)
		}
		if c.Micros*c.MicroBatch*c.DP != 32 {
			t.Errorf("%s: micros*mbs*dp = %d, want global batch 32", c.Label(), c.Micros*c.MicroBatch*c.DP)
		}
	}
}

// TestCheckpointExtendsFeasibility: with a tight memory budget, only
// checkpointed (Mario) configurations survive; without checkpointing the
// imbalanced activation memory blows the budget.
func TestCheckpointExtendsFeasibility(t *testing.T) {
	tn := newTuner()
	// A budget chosen so the 1F1B base config OOMs on device 0 but the
	// checkpointed one fits.
	est, err := tn.Prof.EstimatorFor(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	budget := est.FrameworkMem + est.WeightBytes[0] + 4*est.ActFull[0]
	best, trace, err := tn.Search(Space{
		Devices:      8,
		GlobalBatch:  32,
		MicroBatches: []int{2},
		MinPP:        8,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B},
		DeviceMem:    budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Ckpt {
		t.Errorf("best under tight memory should be checkpointed, got %s", best.Label())
	}
	sawBaseOOM := false
	for _, c := range trace {
		if !c.Ckpt && c.OOM {
			sawBaseOOM = true
			if c.Throughput != 0 {
				t.Errorf("OOM candidate %s has non-zero throughput %v", c.Label(), c.Throughput)
			}
		}
	}
	if !sawBaseOOM {
		t.Error("expected the base configuration to hit the OOM penalty")
	}
}

func TestDPEfficiency(t *testing.T) {
	tn := &Tuner{DPEfficiency: 0.9}
	if got := tn.dpEff(1); got != 1 {
		t.Errorf("dpEff(1) = %v", got)
	}
	if got := tn.dpEff(2); got != 0.9 {
		t.Errorf("dpEff(2) = %v", got)
	}
	if got, want := tn.dpEff(4), 0.81; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("dpEff(4) = %v, want %v", got, want)
	}
}

// TestSpaceWithDefaults pins the defaulting rules of the search space,
// including the clamps around small clusters and the Workers fallback.
func TestSpaceWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Space
		want func(t *testing.T, s Space)
	}{
		{
			name: "zero value fills the paper grid",
			in:   Space{Devices: 8},
			want: func(t *testing.T, s Space) {
				if len(s.Schemes) != 3 || s.Schemes[0] != pipeline.Scheme1F1B {
					t.Errorf("Schemes = %v", s.Schemes)
				}
				if len(s.Checkpoint) != 2 || s.Checkpoint[0] != false || s.Checkpoint[1] != true {
					t.Errorf("Checkpoint = %v", s.Checkpoint)
				}
				if s.MinPP != 4 || s.MaxPP != 8 {
					t.Errorf("PP bounds = [%d, %d], want [4, 8]", s.MinPP, s.MaxPP)
				}
				if len(s.MicroBatches) != 6 || s.MicroBatches[5] != 32 {
					t.Errorf("MicroBatches = %v", s.MicroBatches)
				}
				if s.TP != 1 || s.Chunks != 2 {
					t.Errorf("TP = %d, Chunks = %d", s.TP, s.Chunks)
				}
				if s.Workers != runtime.GOMAXPROCS(0) {
					t.Errorf("Workers = %d, want GOMAXPROCS = %d", s.Workers, runtime.GOMAXPROCS(0))
				}
			},
		},
		{
			name: "MinPP clamps to small clusters",
			in:   Space{Devices: 2},
			want: func(t *testing.T, s Space) {
				if s.MinPP != 2 || s.MaxPP != 2 {
					t.Errorf("PP bounds = [%d, %d], want [2, 2]", s.MinPP, s.MaxPP)
				}
			},
		},
		{
			name: "MaxPP above the cluster is clamped",
			in:   Space{Devices: 8, MaxPP: 64},
			want: func(t *testing.T, s Space) {
				if s.MaxPP != 8 {
					t.Errorf("MaxPP = %d, want 8", s.MaxPP)
				}
			},
		},
		{
			name: "explicit values survive",
			in: Space{Devices: 16, Schemes: []pipeline.Scheme{pipeline.SchemeGPipe},
				Checkpoint: []bool{true}, MinPP: 2, MaxPP: 4,
				MicroBatches: []int{3}, TP: 2, Chunks: 4, Workers: 7},
			want: func(t *testing.T, s Space) {
				if len(s.Schemes) != 1 || s.Schemes[0] != pipeline.SchemeGPipe ||
					len(s.Checkpoint) != 1 || !s.Checkpoint[0] ||
					s.MinPP != 2 || s.MaxPP != 4 ||
					len(s.MicroBatches) != 1 || s.MicroBatches[0] != 3 ||
					s.TP != 2 || s.Chunks != 4 || s.Workers != 7 {
					t.Errorf("explicit fields rewritten: %+v", s)
				}
			},
		},
		{
			name: "empty non-nil slices are kept empty",
			in:   Space{Devices: 8, MicroBatches: []int{}, Schemes: []pipeline.Scheme{}},
			want: func(t *testing.T, s Space) {
				if len(s.MicroBatches) != 0 || s.MicroBatches == nil {
					t.Errorf("MicroBatches = %v", s.MicroBatches)
				}
				if len(s.Schemes) != 0 || s.Schemes == nil {
					t.Errorf("Schemes = %v", s.Schemes)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.want(t, tc.in.withDefaults())
		})
	}
}

// TestSearchInfeasibleSpaces walks the "no feasible configuration" error
// path for every structural dead end the space can encode.
func TestSearchInfeasibleSpaces(t *testing.T) {
	cases := []struct {
		name  string
		space Space
	}{
		{"empty MicroBatches slice", Space{Devices: 8, GlobalBatch: 32, MicroBatches: []int{}}},
		{"MinPP above MaxPP", Space{Devices: 8, GlobalBatch: 32, MinPP: 8, MaxPP: 4, MicroBatches: []int{1}}},
		{"no PP divides the cluster", Space{Devices: 8, GlobalBatch: 32, MinPP: 5, MaxPP: 7, MicroBatches: []int{1}}},
		{"micro-batch never divides the batch", Space{Devices: 8, GlobalBatch: 7, MinPP: 8, MicroBatches: []int{16}}},
		{"empty scheme list", Space{Devices: 8, GlobalBatch: 32, Schemes: []pipeline.Scheme{}, MicroBatches: []int{1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tn := newTuner()
			_, _, err := tn.Search(tc.space)
			if err == nil {
				t.Fatal("expected no-feasible-configuration error")
			}
			if tn.Stats.Explored != 0 || tn.Stats.Improved != 0 {
				t.Errorf("infeasible space explored candidates: %+v", tn.Stats)
			}
		})
	}
}

// TestDPEffEdgeCases pins the clamping of out-of-range efficiency
// coefficients: non-positive values fall back to the paper's 0.97 and values
// above 1 cap at perfect scaling.
func TestDPEffEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		eff  float64
		dp   int
		want float64
	}{
		{"zero defaults to 0.97", 0, 2, 0.97},
		{"negative defaults to 0.97", -0.5, 2, 0.97},
		{"above one clamps to perfect scaling", 1.5, 8, 1},
		{"exactly one stays perfect", 1, 16, 1},
		{"dp=1 is always perfect", 0.5, 1, 1},
		{"in-range value applies per doubling", 0.9, 4, 0.81},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tn := &Tuner{DPEfficiency: tc.eff}
			if got := tn.dpEff(tc.dp); math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("dpEff(%d) with eff=%v = %v, want %v", tc.dp, tc.eff, got, tc.want)
			}
		})
	}
}

func TestSearchRejectsEmpty(t *testing.T) {
	tn := newTuner()
	if _, _, err := tn.Search(Space{Devices: 0, GlobalBatch: 8}); err == nil {
		t.Error("zero devices accepted")
	}
	// Micro-batch sizes that never divide the global batch leave nothing.
	if _, _, err := tn.Search(Space{Devices: 8, GlobalBatch: 7, MicroBatches: []int{16}, MinPP: 8}); err == nil {
		t.Error("infeasible space should error")
	}
}

func TestRank(t *testing.T) {
	trace := []Candidate{
		{Scheme: pipeline.Scheme1F1B, PP: 4, MicroBatch: 1, Throughput: 5},
		{Scheme: pipeline.Scheme1F1B, PP: 8, MicroBatch: 2, Throughput: 9},
		{Scheme: pipeline.SchemeChimera, PP: 8, MicroBatch: 2, Throughput: 7},
	}
	ranked := Rank(trace)
	if ranked[0].Throughput != 9 || ranked[2].Throughput != 5 {
		t.Errorf("Rank order wrong: %v", ranked)
	}
	if trace[0].Throughput != 5 {
		t.Error("Rank mutated its input")
	}
}

func TestCandidateLabel(t *testing.T) {
	c := Candidate{Scheme: pipeline.SchemeChimera, Ckpt: true, PP: 16, MicroBatch: 4}
	if got, want := c.Label(), "X-16-4(mario)"; got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
}

// TestSplitBackwardMode: enabling the ZB-H1 extension never lowers the best
// throughput (it is only kept when the simulator confirms a win) and the
// winning schedule may contain split backwards.
func TestSplitBackwardMode(t *testing.T) {
	space := Space{
		Devices:      8,
		GlobalBatch:  32,
		MicroBatches: []int{2},
		MinPP:        8,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B},
		Checkpoint:   []bool{true},
		DeviceMem:    cost.A100_40G.MemBytes,
	}
	plain := newTuner()
	bestPlain, _, err := plain.Search(space)
	if err != nil {
		t.Fatal(err)
	}
	zb := newTuner()
	zb.SplitBackward = true
	bestZB, _, err := zb.Search(space)
	if err != nil {
		t.Fatal(err)
	}
	if bestZB.Throughput < bestPlain.Throughput-1e-9 {
		t.Errorf("split-backward mode regressed: %v vs %v", bestZB.Throughput, bestPlain.Throughput)
	}
	t.Logf("plain %v, with split backward %v", bestPlain.Throughput, bestZB.Throughput)
}

// TestZeroBubbleSchemeAxis: ZB-H1 and DualPipe-D work as scheme-axis values
// — they build, validate, pass the graph tuner on checkpointed points and
// simulate to positive throughput — and at a fixed PP the ZB-H1 candidate is
// at least as fast as same-shape 1F1B (the weight halves fill bubbles; the
// bounds stay admissible for the split occupancy, or branch-and-bound would
// disagree with the exhaustive walk, which TestBnBMatchesGridArgmax pins).
func TestZeroBubbleSchemeAxis(t *testing.T) {
	tn := newTuner()
	best, trace, err := tn.Search(Space{
		Devices:      8,
		GlobalBatch:  64,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B, pipeline.SchemeZBH1, pipeline.SchemeDualPipeD},
		MicroBatches: []int{1, 2},
		MinPP:        8,
		// No memory cap: DualPipe-D's two weight replicas genuinely exceed
		// 40G at this size, and the point here is schedule quality, not the
		// OOM penalty (other tests pin that).
		NoPrune: true, // full trace: every feasible point simulated
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Throughput <= 0 {
		t.Fatalf("best candidate has throughput %v", best.Throughput)
	}
	byScheme := map[pipeline.Scheme]float64{}
	for _, c := range trace {
		if c.Throughput > byScheme[c.Scheme] {
			byScheme[c.Scheme] = c.Throughput
		}
	}
	for _, sch := range []pipeline.Scheme{pipeline.SchemeZBH1, pipeline.SchemeDualPipeD} {
		if byScheme[sch] <= 0 {
			t.Errorf("%s never reached a positive-throughput candidate", sch)
		}
	}
	if byScheme[pipeline.SchemeZBH1] < byScheme[pipeline.Scheme1F1B] {
		t.Errorf("ZB-H1 best %v below 1F1B best %v", byScheme[pipeline.SchemeZBH1], byScheme[pipeline.Scheme1F1B])
	}
	t.Logf("best per scheme: 1F1B=%v ZB-H1=%v DualPipe-D=%v",
		byScheme[pipeline.Scheme1F1B], byScheme[pipeline.SchemeZBH1], byScheme[pipeline.SchemeDualPipeD])
}
