package tuner

import (
	"testing"

	"mario/internal/cost"
	"mario/internal/pipeline"
	"mario/internal/profile"
)

func newTuner() *Tuner {
	return &Tuner{
		Prof: &profile.Profiler{
			Model:   cost.LLaMA2_3B,
			HW:      cost.A100_40G,
			Spec:    profile.DefaultMachine,
			Devices: 4,
			Iters:   4,
		},
		MaxRounds: 3,
	}
}

func TestSearchFindsFeasibleBest(t *testing.T) {
	tn := newTuner()
	best, trace, err := tn.Search(Space{
		Devices:      8,
		GlobalBatch:  32,
		MicroBatches: []int{1, 2},
		DeviceMem:    cost.A100_40G.MemBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Throughput <= 0 {
		t.Fatalf("best candidate has throughput %v", best.Throughput)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	for _, c := range trace {
		if c.Throughput > best.Throughput {
			t.Errorf("trace candidate %s (%v) beats reported best %s (%v)", c.Label(), c.Throughput, best.Label(), best.Throughput)
		}
		if c.PP*c.DP != 8 {
			t.Errorf("%s: pp*dp = %d, want 8", c.Label(), c.PP*c.DP)
		}
		if c.Micros*c.MicroBatch*c.DP != 32 {
			t.Errorf("%s: micros*mbs*dp = %d, want global batch 32", c.Label(), c.Micros*c.MicroBatch*c.DP)
		}
	}
}

// TestCheckpointExtendsFeasibility: with a tight memory budget, only
// checkpointed (Mario) configurations survive; without checkpointing the
// imbalanced activation memory blows the budget.
func TestCheckpointExtendsFeasibility(t *testing.T) {
	tn := newTuner()
	// A budget chosen so the 1F1B base config OOMs on device 0 but the
	// checkpointed one fits.
	est, err := tn.Prof.EstimatorFor(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	budget := est.FrameworkMem + est.WeightBytes[0] + 4*est.ActFull[0]
	best, trace, err := tn.Search(Space{
		Devices:      8,
		GlobalBatch:  32,
		MicroBatches: []int{2},
		MinPP:        8,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B},
		DeviceMem:    budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Ckpt {
		t.Errorf("best under tight memory should be checkpointed, got %s", best.Label())
	}
	sawBaseOOM := false
	for _, c := range trace {
		if !c.Ckpt && c.OOM {
			sawBaseOOM = true
			if c.Throughput != 0 {
				t.Errorf("OOM candidate %s has non-zero throughput %v", c.Label(), c.Throughput)
			}
		}
	}
	if !sawBaseOOM {
		t.Error("expected the base configuration to hit the OOM penalty")
	}
}

func TestDPEfficiency(t *testing.T) {
	tn := &Tuner{DPEfficiency: 0.9}
	if got := tn.dpEff(1); got != 1 {
		t.Errorf("dpEff(1) = %v", got)
	}
	if got := tn.dpEff(2); got != 0.9 {
		t.Errorf("dpEff(2) = %v", got)
	}
	if got, want := tn.dpEff(4), 0.81; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("dpEff(4) = %v, want %v", got, want)
	}
}

func TestSearchRejectsEmpty(t *testing.T) {
	tn := newTuner()
	if _, _, err := tn.Search(Space{Devices: 0, GlobalBatch: 8}); err == nil {
		t.Error("zero devices accepted")
	}
	// Micro-batch sizes that never divide the global batch leave nothing.
	if _, _, err := tn.Search(Space{Devices: 8, GlobalBatch: 7, MicroBatches: []int{16}, MinPP: 8}); err == nil {
		t.Error("infeasible space should error")
	}
}

func TestRank(t *testing.T) {
	trace := []Candidate{
		{Scheme: pipeline.Scheme1F1B, PP: 4, MicroBatch: 1, Throughput: 5},
		{Scheme: pipeline.Scheme1F1B, PP: 8, MicroBatch: 2, Throughput: 9},
		{Scheme: pipeline.SchemeChimera, PP: 8, MicroBatch: 2, Throughput: 7},
	}
	ranked := Rank(trace)
	if ranked[0].Throughput != 9 || ranked[2].Throughput != 5 {
		t.Errorf("Rank order wrong: %v", ranked)
	}
	if trace[0].Throughput != 5 {
		t.Error("Rank mutated its input")
	}
}

func TestCandidateLabel(t *testing.T) {
	c := Candidate{Scheme: pipeline.SchemeChimera, Ckpt: true, PP: 16, MicroBatch: 4}
	if got, want := c.Label(), "X-16-4(mario)"; got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
}

// TestSplitBackwardMode: enabling the ZB-H1 extension never lowers the best
// throughput (it is only kept when the simulator confirms a win) and the
// winning schedule may contain split backwards.
func TestSplitBackwardMode(t *testing.T) {
	space := Space{
		Devices:      8,
		GlobalBatch:  32,
		MicroBatches: []int{2},
		MinPP:        8,
		Schemes:      []pipeline.Scheme{pipeline.Scheme1F1B},
		Checkpoint:   []bool{true},
		DeviceMem:    cost.A100_40G.MemBytes,
	}
	plain := newTuner()
	bestPlain, _, err := plain.Search(space)
	if err != nil {
		t.Fatal(err)
	}
	zb := newTuner()
	zb.SplitBackward = true
	bestZB, _, err := zb.Search(space)
	if err != nil {
		t.Fatal(err)
	}
	if bestZB.Throughput < bestPlain.Throughput-1e-9 {
		t.Errorf("split-backward mode regressed: %v vs %v", bestZB.Throughput, bestPlain.Throughput)
	}
	t.Logf("plain %v, with split backward %v", bestPlain.Throughput, bestZB.Throughput)
}
