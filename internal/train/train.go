// Package train executes Mario instruction lists on a real (miniature)
// transformer with real tensors: one goroutine per device, activations and
// gradients travelling over Go channels, and activation checkpointing that
// genuinely drops and recomputes tensors. It is the semantic ground truth of
// this reproduction — where the paper deploys its schedules in
// Megatron-DeepSpeed and trains GPT3/LLaMA2, we train a small causal
// transformer on synthetic data and verify that Mario-optimized schedules
// produce identical losses and gradients to the baseline while holding far
// fewer live activation bytes.
//
// All three placements are executable: linear (GPipe, 1F1B), bidirectional
// (Chimera and DualPipe-D, with two weight replicas whose gradients are
// merged at the AllReduce barrier, exactly like Chimera's intra-iteration
// synchronisation) and interleaved (multiple model chunks per device).
// Split-backward schedules (ZB-H1, DualPipe-D, or any schedule rewritten by
// graph.SplitBackward) execute for real too: BackwardInput runs the
// input-gradient chain and defers the weight-gradient work, which the
// matching BackwardWeight instruction later applies. Because the fused
// Backward of every nn layer is defined as exactly that composition, split
// and fused executions of the same workload produce bit-identical losses and
// weights.
package train

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mario/internal/nn"
	"mario/internal/obs"
	"mario/internal/pipeline"
	"mario/internal/tensor"
)

// ErrStalled is returned when devices stop making progress (a real deadlock
// in the schedule).
var ErrStalled = errors.New("train: pipeline stalled")

// Config sizes the model and the training job.
type Config struct {
	Devices        int // pipeline devices
	BlocksPerStage int
	Dim            int
	SeqLen         int
	Micros         int
	BatchPerMicro  int // samples per micro-batch
	Seed           uint64
	LR             float64
	// Vocab switches the trainer into language-model mode: the first stage
	// embeds synthetic token streams, the last stage projects to logits and
	// the loss is next-token cross-entropy — the GPT-style setup of the
	// paper's workloads. Zero keeps the regression (MSE) mode. The LM head
	// is untied from the embedding (tying would require cross-device
	// gradient synchronisation of a shared table, which Megatron does with
	// an extra all-reduce).
	Vocab int
	// Watchdog bounds wall-clock per iteration; 0 means 30s.
	Watchdog time.Duration
}

// Trainer holds the partitioned model. Stage modules are created lazily per
// (part, stage) coordinate when a schedule's placement is first seen, so one
// Trainer executes exactly one placement family.
type Trainer struct {
	cfg Config
	// stages[part][stage]; replicas (Chimera parts) of the same stage are
	// initialised identically and kept in lockstep by the gradient merge.
	stages map[[2]int]*nn.Stage
	// embeds and heads exist in language-model mode, one per weight
	// replica, attached to the first and last stage respectively.
	embeds map[int]*nn.Embedding
	heads  map[int]*nn.LMHead
	// replicas is the weight-replica count of the placement seen.
	replicas int

	// Sink, when non-nil, receives one obs.Event per executed instruction
	// after each RunIteration, device-major in execution order. Unlike the
	// cluster emulator's virtual timestamps these are wall-clock seconds
	// since iteration start, with live activation bytes as the memory
	// figure — a trace of a real (miniature) training run.
	Sink obs.Sink
}

// New builds the trainer; the model stages materialise on the first
// RunIteration from the schedule's placement.
func New(cfg Config) (*Trainer, error) {
	switch {
	case cfg.Devices <= 0, cfg.BlocksPerStage <= 0, cfg.Dim <= 0, cfg.SeqLen <= 0,
		cfg.Micros <= 0, cfg.BatchPerMicro <= 0:
		return nil, fmt.Errorf("train: all config dimensions must be positive: %+v", cfg)
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	return &Trainer{
		cfg:    cfg,
		stages: make(map[[2]int]*nn.Stage),
		embeds: make(map[int]*nn.Embedding),
		heads:  make(map[int]*nn.LMHead),
	}, nil
}

// lm reports whether the trainer runs in language-model mode.
func (t *Trainer) lm() bool { return t.cfg.Vocab > 0 }

// embedFor returns the per-replica embedding (LM mode).
func (t *Trainer) embedFor(part int) *nn.Embedding {
	if e, ok := t.embeds[part]; ok {
		return e
	}
	e := nn.NewEmbedding(tensor.NewRNG(t.cfg.Seed^0xE3BED), t.cfg.Vocab, t.cfg.Dim)
	t.embeds[part] = e
	return e
}

// headFor returns the per-replica LM head (LM mode).
func (t *Trainer) headFor(part int) *nn.LMHead {
	if h, ok := t.heads[part]; ok {
		return h
	}
	h := nn.NewLMHead(tensor.NewRNG(t.cfg.Seed^0x4EAD), t.cfg.Vocab, t.cfg.Dim)
	t.heads[part] = h
	return h
}

// stageFor returns (creating on first use) the stage module for a (part,
// stage) coordinate. Weight replicas derive from the same per-stage seed, so
// they start identical.
func (t *Trainer) stageFor(part, stage int) *nn.Stage {
	key := [2]int{part, stage}
	if s, ok := t.stages[key]; ok {
		return s
	}
	s := nn.NewStage(tensor.NewRNG(t.cfg.Seed+uint64(stage)*1000003), t.cfg.BlocksPerStage, t.cfg.Dim, t.cfg.SeqLen)
	t.stages[key] = s
	return s
}

// materialize creates every stage module the schedule references, so the
// concurrent phase only reads the map.
func (t *Trainer) materialize(s *pipeline.Schedule) {
	pl := s.Placement
	t.replicas = pl.WeightReplicas()
	lastStage := pl.NumStages() - 1
	for _, list := range s.Lists {
		for _, in := range list {
			if in.Micro == pipeline.NoMicro {
				continue
			}
			t.stageFor(in.Part, in.Stage)
			if t.lm() {
				if in.Stage == 0 {
					t.embedFor(in.Part)
				}
				if in.Stage == lastStage {
					t.headFor(in.Part)
				}
			}
		}
	}
}

// Stats is the outcome of one training iteration.
type Stats struct {
	// Loss is the sum of per-micro-batch losses (deterministic across
	// schedules).
	Loss float64
	// PeakActBytes is the per-device peak of live activation memory
	// (stashes + retained caches + in-flight outputs + loss gradients).
	PeakActBytes []int64
	// MicroLosses holds the per-micro losses in micro order.
	MicroLosses []float64
}

// input returns the synthetic input micro-batch m (seeded, so every schedule
// sees the same data).
func (t *Trainer) input(m int) *tensor.Tensor {
	r := tensor.NewRNG(t.cfg.Seed ^ (0xDA7A + uint64(m)*7919))
	return tensor.Randn(r, 1, t.cfg.BatchPerMicro*t.cfg.SeqLen, t.cfg.Dim)
}

// target returns the regression target for micro-batch m.
func (t *Trainer) target(m int) *tensor.Tensor {
	r := tensor.NewRNG(t.cfg.Seed ^ (0x7A9E7 + uint64(m)*104729))
	return tensor.Randn(r, 0.5, t.cfg.BatchPerMicro*t.cfg.SeqLen, t.cfg.Dim)
}

// tokenStream returns the synthetic token window for micro-batch m in LM
// mode: n inputs plus one trailing token so the targets are the inputs
// shifted by one.
func (t *Trainer) tokenStream(m int) (inputs, targets []int) {
	r := tensor.NewRNG(t.cfg.Seed ^ (0x70CE5 + uint64(m)*31337))
	n := t.cfg.BatchPerMicro * t.cfg.SeqLen
	ids := make([]int, n+1)
	for i := range ids {
		ids[i] = int(r.Float64() * float64(t.cfg.Vocab))
	}
	return ids[:n], ids[1:]
}

// Params returns the trainable parameters of the primary replica (part 0),
// stage by stage.
func (t *Trainer) Params() [][]*nn.Param {
	var maxStage int
	for k := range t.stages {
		if k[0] == 0 && k[1] > maxStage {
			maxStage = k[1]
		}
	}
	out := make([][]*nn.Param, maxStage+1)
	for k, s := range t.stages {
		if k[0] == 0 {
			out[k[1]] = s.Params()
		}
	}
	return out
}

type msg struct {
	key  pipeline.Key
	data *tensor.Tensor
}

type linkKey struct {
	from, to, channel int
}

func channelOf(k pipeline.Kind) int {
	if k == pipeline.SendGrad || k == pipeline.RecvGrad {
		return 1
	}
	return 0
}

// cellKey identifies per-(micro, stage) execution state on a device.
type cellKey struct{ micro, stage int }

// devState is the mutable per-device execution state of one iteration.
type devState struct {
	caches  map[cellKey]*nn.StageCache
	stashes map[cellKey]*tensor.Tensor // CFW inputs awaiting recompute
	inputs  map[cellKey]*tensor.Tensor // received/generated stage inputs
	outputs map[cellKey]*tensor.Tensor // produced outputs awaiting SendAct
	grads   map[cellKey]*tensor.Tensor // received/loss-computed output grads
	dxs     map[cellKey]*tensor.Tensor // input grads awaiting SendGrad
	heads   map[cellKey]nn.Cache       // LM-head caches (language-model mode)

	// wgrads holds the deferred weight-gradient work a BackwardInput left
	// for its BackwardWeight (split-backward schedules); wgradBytes is the
	// live footprint the work pins (caches and output gradients) until it
	// runs.
	wgrads     map[cellKey]nn.WeightWork
	wgradBytes map[cellKey]int64

	live int64
	peak int64

	losses map[int]float64

	// events collects the device's wall-clock trace when the trainer has a
	// sink attached (nil otherwise); epoch anchors the timestamps.
	events []obs.Event
	epoch  time.Time
}

func newDevState() *devState {
	return &devState{
		caches:  make(map[cellKey]*nn.StageCache),
		stashes: make(map[cellKey]*tensor.Tensor),
		inputs:  make(map[cellKey]*tensor.Tensor),
		outputs: make(map[cellKey]*tensor.Tensor),
		grads:   make(map[cellKey]*tensor.Tensor),
		dxs:     make(map[cellKey]*tensor.Tensor),
		heads:   make(map[cellKey]nn.Cache),
		losses:  make(map[int]float64),

		wgrads:     make(map[cellKey]nn.WeightWork),
		wgradBytes: make(map[cellKey]int64),
	}
}

func (ds *devState) track(delta int64) {
	ds.live += delta
	if ds.live > ds.peak {
		ds.peak = ds.live
	}
}

var errTornDown = errors.New("train: torn down")

// RunIteration executes one training iteration under the given schedule and
// applies the optimizer step.
func (t *Trainer) RunIteration(s *pipeline.Schedule) (*Stats, error) {
	if s.NumDevices() != t.cfg.Devices {
		return nil, fmt.Errorf("train: schedule has %d devices, trainer %d", s.NumDevices(), t.cfg.Devices)
	}
	if s.Micros != t.cfg.Micros {
		return nil, fmt.Errorf("train: schedule has %d micros, trainer %d", s.Micros, t.cfg.Micros)
	}
	t.materialize(s)

	watchdog := t.cfg.Watchdog
	if watchdog <= 0 {
		watchdog = 30 * time.Second
	}
	D := t.cfg.Devices

	links := make(map[linkKey]chan msg)
	for d, list := range s.Lists {
		for _, in := range list {
			if in.Kind == pipeline.SendAct || in.Kind == pipeline.SendGrad {
				lk := linkKey{d, s.PeerDevice(d, in), channelOf(in.Kind)}
				if links[lk] == nil {
					links[lk] = make(chan msg, t.cfg.Micros*s.NumStages()+1)
				}
			}
		}
	}

	states := make([]*devState, D)
	errs := make([]error, D)
	var wg sync.WaitGroup
	abort := make(chan struct{})
	var abortOnce sync.Once
	fail := func(d int, err error) {
		errs[d] = err
		abortOnce.Do(func() { close(abort) })
	}

	// The AllReduce barrier: every device arrives once per iteration; the
	// coordinator merges weight-replica gradients (Chimera) and releases.
	arrive := make(chan int, D)
	release := make(chan struct{})
	go t.allReduceCoordinator(arrive, release, abort, D)

	epoch := time.Now()
	for d := 0; d < D; d++ {
		states[d] = newDevState()
		if t.Sink != nil {
			states[d].events = make([]obs.Event, 0, len(s.Lists[d]))
			states[d].epoch = epoch
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			if err := t.runDevice(d, s, states[d], links, arrive, release, abort); err != nil {
				fail(d, err)
			}
		}(d)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(watchdog):
		abortOnce.Do(func() { close(abort) })
		<-done
		return nil, fmt.Errorf("%w after %v", ErrStalled, watchdog)
	}
	// Report the primary failure; errTornDown entries are secondary
	// teardown noise from devices unblocked by the abort.
	var tornDown error
	for d := 0; d < D; d++ {
		if errs[d] == nil {
			continue
		}
		if !errors.Is(errs[d], errTornDown) {
			return nil, errs[d]
		}
		tornDown = errs[d]
	}
	if tornDown != nil {
		return nil, tornDown
	}

	stats := &Stats{
		PeakActBytes: make([]int64, D),
		MicroLosses:  make([]float64, t.cfg.Micros),
	}
	for d := 0; d < D; d++ {
		stats.PeakActBytes[d] = states[d].peak
		for m, l := range states[d].losses {
			stats.MicroLosses[m] = l
		}
	}
	for _, l := range stats.MicroLosses {
		stats.Loss += l
	}
	if t.Sink != nil {
		for d := 0; d < D; d++ {
			for _, ev := range states[d].events {
				t.Sink.Emit(ev)
			}
		}
	}
	return stats, nil
}

// allReduceCoordinator waits for all devices to reach their AllReduce, then
// merges the gradient accumulators of weight replicas (Chimera's two
// pipelines train the same model; their gradients sum before the optimizer
// step, keeping the replicas in lockstep) and releases the devices.
func (t *Trainer) allReduceCoordinator(arrive <-chan int, release chan<- struct{}, abort <-chan struct{}, d int) {
	for i := 0; i < d; i++ {
		select {
		case <-arrive:
		case <-abort:
			close(release)
			return
		}
	}
	if t.replicas > 1 {
		for key, primary := range t.stages {
			if key[0] != 0 {
				continue
			}
			for part := 1; part < t.replicas; part++ {
				replica, ok := t.stages[[2]int{part, key[1]}]
				if !ok {
					continue
				}
				mergeGrads(primary.Params(), replica.Params())
			}
		}
		for part := 1; part < t.replicas; part++ {
			if p0, ok := t.embeds[0]; ok {
				if pr, ok := t.embeds[part]; ok {
					mergeGrads(p0.Params(), pr.Params())
				}
			}
			if p0, ok := t.heads[0]; ok {
				if pr, ok := t.heads[part]; ok {
					mergeGrads(p0.Params(), pr.Params())
				}
			}
		}
	}
	close(release)
}

// mergeGrads sums the gradient accumulators of two parameter sets and
// writes the sum back into both, keeping replicas in lockstep.
func mergeGrads(a, b []*nn.Param) {
	for i := range a {
		for j := range a[i].Grad {
			sum := a[i].Grad[j] + b[i].Grad[j]
			a[i].Grad[j] = sum
			b[i].Grad[j] = sum
		}
	}
}

// runDevice interprets one device's instruction list.
func (t *Trainer) runDevice(
	d int, s *pipeline.Schedule, ds *devState,
	links map[linkKey]chan msg,
	arrive chan<- int, release <-chan struct{}, abort chan struct{},
) error {
	lastStage := s.NumStages() - 1
	record := ds.events != nil
	for _, in := range s.Lists[d] {
		var start float64
		if record {
			start = time.Since(ds.epoch).Seconds()
		}
		ck := cellKey{micro: in.Micro, stage: in.Stage}
		switch in.Kind {
		case pipeline.RecvAct, pipeline.RecvGrad:
			lk := linkKey{s.PeerDevice(d, in), d, channelOf(in.Kind)}
			ch := links[lk]
			if ch == nil {
				return fmt.Errorf("train: dev%d has no link for %s", d, in)
			}
			select {
			case got := <-ch:
				if got.key != in.Key() {
					return fmt.Errorf("train: dev%d expected %s, link delivered %v", d, in, got.key)
				}
				if in.Kind == pipeline.RecvAct {
					ds.inputs[ck] = got.data
				} else {
					ds.grads[ck] = got.data
				}
				ds.track(int64(got.data.Bytes()))
			case <-abort:
				return errTornDown
			}

		case pipeline.Forward, pipeline.CkptForward:
			stage := t.stageFor(in.Part, in.Stage)
			x := ds.inputs[ck]
			if x == nil {
				if in.Stage != 0 {
					return fmt.Errorf("train: dev%d forward %s has no input", d, in)
				}
				if t.lm() {
					ids, _ := t.tokenStream(in.Micro)
					x = t.embedFor(in.Part).Forward(ids)
				} else {
					x = t.input(in.Micro)
				}
				ds.track(int64(x.Bytes()))
				ds.inputs[ck] = x
			}
			var y *tensor.Tensor
			if in.Kind == pipeline.CkptForward {
				y = stage.ForwardDropped(x)
				ds.stashes[ck] = x // the stash keeps the input bytes alive
			} else {
				var c *nn.StageCache
				y, c = stage.Forward(x)
				ds.caches[ck] = c
				ds.track(int64(c.Bytes()))
				ds.track(-int64(x.Bytes())) // cache owns the input now
			}
			delete(ds.inputs, ck)
			if in.Stage == lastStage {
				var loss float64
				var dy *tensor.Tensor
				if t.lm() {
					_, targets := t.tokenStream(in.Micro)
					head := t.headFor(in.Part)
					logits, hc := head.Forward(y)
					loss, dy = nn.CrossEntropy(logits, targets)
					if in.Kind == pipeline.Forward {
						// The head cache (which references y) is needed by
						// the backward; checkpointed forwards rebuild it in
						// the recompute instead.
						ds.heads[ck] = hc
						ds.track(int64(hc.Bytes()))
					}
				} else {
					loss, dy = tensor.MSE(y, t.target(in.Micro))
				}
				ds.losses[in.Micro] = loss
				ds.grads[ck] = dy
				ds.track(int64(dy.Bytes()))
			} else {
				ds.outputs[ck] = y
				ds.track(int64(y.Bytes()))
			}

		case pipeline.SendAct:
			y := ds.outputs[ck]
			if y == nil {
				return fmt.Errorf("train: dev%d send %s has no output", d, in)
			}
			lk := linkKey{d, s.PeerDevice(d, in), 0}
			select {
			case links[lk] <- msg{key: s.MatchKey(in), data: y}:
			case <-abort:
				return errTornDown
			}
			delete(ds.outputs, ck)
			ds.track(-int64(y.Bytes()))

		case pipeline.Recompute:
			x := ds.stashes[ck]
			if x == nil {
				return fmt.Errorf("train: dev%d recompute %s has no stash", d, in)
			}
			y, c := t.stageFor(in.Part, in.Stage).Forward(x)
			ds.caches[ck] = c
			ds.track(int64(c.Bytes()))
			if t.lm() && in.Stage == lastStage {
				// Restore the LM-head cache dropped by the checkpointed
				// forward (the loss gradient itself was kept).
				_, hc := t.headFor(in.Part).Forward(y)
				ds.heads[ck] = hc
				ds.track(int64(hc.Bytes()))
			}

		case pipeline.Backward, pipeline.BackwardInput:
			// One code path for fused and split backwards: the input-gradient
			// chain runs now; the weight-gradient work either runs immediately
			// (Backward) or is parked for the matching BackwardWeight
			// (BackwardInput), pinning the bytes it closes over.
			c := ds.caches[ck]
			dy := ds.grads[ck]
			if c == nil || dy == nil {
				return fmt.Errorf("train: dev%d backward %s missing cache or gradient", d, in)
			}
			pinned := int64(c.Bytes()) + int64(dy.Bytes())
			var headWork nn.WeightWork
			if t.lm() && in.Stage == lastStage {
				hc := ds.heads[ck]
				if hc == nil {
					return fmt.Errorf("train: dev%d backward %s missing LM-head cache", d, in)
				}
				pinned += int64(hc.Bytes())
				dy, headWork = t.headFor(in.Part).BackwardInput(hc, dy)
				delete(ds.heads, ck)
			}
			dx, stageWork := t.stageFor(in.Part, in.Stage).BackwardInput(c, dy)
			part, micro := in.Part, in.Micro
			embeds := t.lm() && in.Stage == 0
			work := func() {
				if headWork != nil {
					headWork()
				}
				stageWork()
				if embeds {
					ids, _ := t.tokenStream(micro)
					t.embedFor(part).Backward(ids, dx)
				}
			}
			delete(ds.caches, ck)
			delete(ds.grads, ck)
			if x := ds.stashes[ck]; x != nil {
				delete(ds.stashes, ck)
				ds.track(-int64(x.Bytes()))
			}
			if in.Kind == pipeline.Backward {
				work()
				ds.track(-pinned)
			} else {
				ds.wgrads[ck] = work
				ds.wgradBytes[ck] = pinned
			}
			if in.Stage > 0 {
				ds.dxs[ck] = dx
				ds.track(int64(dx.Bytes()))
			}

		case pipeline.BackwardWeight:
			w := ds.wgrads[ck]
			if w == nil {
				return fmt.Errorf("train: dev%d weight-grad %s has no deferred work", d, in)
			}
			w()
			delete(ds.wgrads, ck)
			ds.track(-ds.wgradBytes[ck])
			delete(ds.wgradBytes, ck)

		case pipeline.SendGrad:
			dx := ds.dxs[ck]
			if dx == nil {
				return fmt.Errorf("train: dev%d send-grad %s has no gradient", d, in)
			}
			lk := linkKey{d, s.PeerDevice(d, in), 1}
			select {
			case links[lk] <- msg{key: s.MatchKey(in), data: dx}:
			case <-abort:
				return errTornDown
			}
			delete(ds.dxs, ck)
			ds.track(-int64(dx.Bytes()))

		case pipeline.AllReduce:
			select {
			case arrive <- d:
			case <-abort:
				return errTornDown
			}
			select {
			case <-release:
			case <-abort:
				return errTornDown
			}

		case pipeline.OptimizerStep:
			// Each device steps the stage modules it owns, once each.
			pl := s.Placement
			for key, stage := range t.stages {
				if pl.Device(key[0], key[1]) != d {
					continue
				}
				for _, p := range stage.Params() {
					p.Step(t.cfg.LR, float64(t.cfg.Micros))
				}
			}
			if t.lm() {
				for part, e := range t.embeds {
					if pl.Device(part, 0) == d {
						e.W.Step(t.cfg.LR, float64(t.cfg.Micros))
					}
				}
				for part, h := range t.heads {
					if pl.Device(part, lastStage) == d {
						h.W.Step(t.cfg.LR, float64(t.cfg.Micros))
					}
				}
			}
		}
		if record {
			end := time.Since(ds.epoch).Seconds()
			ev := obs.Event{
				Device: d, Kind: in.Kind, Micro: in.Micro, Part: in.Part,
				Stage: in.Stage, Peer: -1, Start: start, End: end,
				Mem: float64(ds.live), Buffered: in.Buffered,
			}
			if in.Kind.IsComm() {
				ev.Peer = s.PeerDevice(d, in)
				// Wall-clock receives are essentially all queue wait; the
				// copy itself is a pointer handoff.
				if in.Kind == pipeline.RecvAct || in.Kind == pipeline.RecvGrad {
					ev.Wait = end - start
				}
			}
			ds.events = append(ds.events, ev)
		}
	}
	return nil
}
