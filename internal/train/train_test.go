package train

import (
	"errors"
	"math"
	"testing"
	"time"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
)

func config() Config {
	return Config{
		Devices:        4,
		BlocksPerStage: 1,
		Dim:            16,
		SeqLen:         8,
		Micros:         8,
		BatchPerMicro:  2,
		Seed:           2025,
		LR:             1e-3,
	}
}

func newTrainer(t *testing.T) *Trainer {
	t.Helper()
	tr, err := New(config())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func baseSchedule(t *testing.T, sch pipeline.Scheme) *pipeline.Schedule {
	t.Helper()
	s, err := scheme.Build(sch, scheme.Config{Devices: 4, Micros: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func marioSchedule(t *testing.T) *pipeline.Schedule {
	t.Helper()
	s := baseSchedule(t, pipeline.Scheme1F1B)
	opt, _, err := graph.Optimize(s, graph.Options{Estimator: cost.Uniform(4, 1, 2, 0.25)})
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

// TestLossIdenticalAcrossSchedules: the same model and data produce
// bit-identical per-micro losses under GPipe, 1F1B and the Mario-optimized
// checkpointed 1F1B — checkpointing must not change the math.
func TestLossIdenticalAcrossSchedules(t *testing.T) {
	var ref []float64
	for _, tc := range []struct {
		name  string
		sched *pipeline.Schedule
	}{
		{"gpipe", baseSchedule(t, pipeline.SchemeGPipe)},
		{"1f1b", baseSchedule(t, pipeline.Scheme1F1B)},
		{"mario", marioSchedule(t)},
	} {
		tr := newTrainer(t)
		st, err := tr.RunIteration(tc.sched)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ref == nil {
			ref = st.MicroLosses
			continue
		}
		for m := range ref {
			if st.MicroLosses[m] != ref[m] {
				t.Errorf("%s: micro %d loss %v differs from reference %v", tc.name, m, st.MicroLosses[m], ref[m])
			}
		}
	}
}

// TestGradientsMatchAcrossSchedules: weight updates after one iteration
// agree across schedules up to float64 accumulation-order noise.
func TestGradientsMatchAcrossSchedules(t *testing.T) {
	run := func(s *pipeline.Schedule) *Trainer {
		tr := newTrainer(t)
		if _, err := tr.RunIteration(s); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := run(baseSchedule(t, pipeline.Scheme1F1B))
	b := run(marioSchedule(t))
	pa, pb := a.Params(), b.Params()
	for st := range pa {
		for i := range pa[st] {
			wa, wb := pa[st][i].W.Data, pb[st][i].W.Data
			for j := range wa {
				diff := math.Abs(float64(wa[j]) - float64(wb[j]))
				if diff > 1e-6 {
					t.Fatalf("stage %d param %d elem %d: weights diverge by %v", st, i, j, diff)
				}
			}
		}
	}
}

// TestCheckpointReducesLiveMemory: the Mario schedule's peak live activation
// bytes on the first device are far below the baseline's (which retains
// ~D caches).
func TestCheckpointReducesLiveMemory(t *testing.T) {
	trBase := newTrainer(t)
	base, err := trBase.RunIteration(baseSchedule(t, pipeline.Scheme1F1B))
	if err != nil {
		t.Fatal(err)
	}
	trMario := newTrainer(t)
	mario, err := trMario.RunIteration(marioSchedule(t))
	if err != nil {
		t.Fatal(err)
	}
	if mario.PeakActBytes[0] >= base.PeakActBytes[0]/2 {
		t.Errorf("first-device peak: mario %d not under half of base %d", mario.PeakActBytes[0], base.PeakActBytes[0])
	}
	t.Logf("peak bytes base=%v mario=%v", base.PeakActBytes, mario.PeakActBytes)
}

// TestMemoryImbalanceShape: under base 1F1B the peak decreases with device
// index; under Mario it is balanced (max/min < 2.5).
func TestMemoryImbalanceShape(t *testing.T) {
	tr := newTrainer(t)
	base, err := tr.RunIteration(baseSchedule(t, pipeline.Scheme1F1B))
	if err != nil {
		t.Fatal(err)
	}
	if base.PeakActBytes[0] <= base.PeakActBytes[3] {
		t.Errorf("baseline not imbalanced: %v", base.PeakActBytes)
	}
	tm := newTrainer(t)
	mario, err := tm.RunIteration(marioSchedule(t))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := mario.PeakActBytes[0], mario.PeakActBytes[0]
	for _, p := range mario.PeakActBytes {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if ratio := float64(hi) / float64(lo); ratio > 2.5 {
		t.Errorf("mario memory imbalance ratio %v too high: %v", ratio, mario.PeakActBytes)
	}
}

// TestTrainingConverges: several iterations under the Mario schedule reduce
// the loss — the optimizer step works end to end.
func TestTrainingConverges(t *testing.T) {
	tr := newTrainer(t)
	s := marioSchedule(t)
	var first, last float64
	for it := 0; it < 8; it++ {
		st, err := tr.RunIteration(s)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = st.Loss
		}
		last = st.Loss
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %v last %v", first, last)
	}
}

// TestRunIterationValidation covers the error paths.
func TestRunIterationValidation(t *testing.T) {
	tr := newTrainer(t)
	wrongD, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: 2, Micros: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RunIteration(wrongD); err == nil {
		t.Error("device mismatch accepted")
	}
	wrongN := baseSchedule(t, pipeline.Scheme1F1B)
	wrongN.Micros = 4
	if _, err := tr.RunIteration(wrongN); err == nil {
		t.Error("micro mismatch accepted")
	}
}

// splitSchedule returns 1F1B rewritten by the split-backward graph pass
// (fused BW → BI + WG), which must now execute for real.
func splitSchedule(t *testing.T) *pipeline.Schedule {
	t.Helper()
	split, _, err := graph.SplitBackward(baseSchedule(t, pipeline.Scheme1F1B),
		graph.Options{Estimator: cost.Uniform(4, 1, 2, 0.25)})
	if err != nil {
		t.Fatal(err)
	}
	if split.CountKind(-1, pipeline.BackwardInput) == 0 {
		t.Fatal("SplitBackward did not split this pipeline")
	}
	return split
}

// TestSplitBackwardBitIdentical is the semantic acceptance check of the
// zero-bubble family: training under split-backward schedules (ZB-H1 and the
// SplitBackward-rewritten 1F1B) produces bit-identical per-iteration losses
// — and bit-identical weights — to fused-backward 1F1B, because every nn
// layer's fused Backward IS BackwardInput composed with its weight work and
// the weight halves replay in the same per-parameter order.
func TestSplitBackwardBitIdentical(t *testing.T) {
	const iters = 4
	run := func(s *pipeline.Schedule) (*Trainer, []float64) {
		tr := newTrainer(t)
		losses := make([]float64, iters)
		for it := 0; it < iters; it++ {
			st, err := tr.RunIteration(s)
			if err != nil {
				t.Fatal(err)
			}
			losses[it] = st.Loss
		}
		return tr, losses
	}
	refTr, refLoss := run(baseSchedule(t, pipeline.Scheme1F1B))
	for _, tc := range []struct {
		name  string
		sched *pipeline.Schedule
	}{
		{"zb-h1", baseSchedule(t, pipeline.SchemeZBH1)},
		{"split-1f1b", splitSchedule(t)},
	} {
		tr, losses := run(tc.sched)
		for it := range losses {
			if losses[it] != refLoss[it] {
				t.Errorf("%s: iteration %d loss %v != fused %v", tc.name, it, losses[it], refLoss[it])
			}
		}
		pa, pb := refTr.Params(), tr.Params()
		for st := range pa {
			for i := range pa[st] {
				for j := range pa[st][i].W.Data {
					if pa[st][i].W.Data[j] != pb[st][i].W.Data[j] {
						t.Fatalf("%s: stage %d param %d elem %d: weight %v != fused %v",
							tc.name, st, i, j, pb[st][i].W.Data[j], pa[st][i].W.Data[j])
					}
				}
			}
		}
	}
}

// TestSplitBackwardLanguageModel runs the LM mode (embedding + head, whose
// weight gradients are deferred too) under ZB-H1 and checks bit-identical
// losses against fused 1F1B over several iterations.
func TestSplitBackwardLanguageModel(t *testing.T) {
	lmCfg := config()
	lmCfg.Vocab = 32
	const iters = 3
	run := func(s *pipeline.Schedule) []float64 {
		tr, err := New(lmCfg)
		if err != nil {
			t.Fatal(err)
		}
		losses := make([]float64, iters)
		for it := 0; it < iters; it++ {
			st, err := tr.RunIteration(s)
			if err != nil {
				t.Fatal(err)
			}
			losses[it] = st.Loss
		}
		return losses
	}
	ref := run(baseSchedule(t, pipeline.Scheme1F1B))
	got := run(baseSchedule(t, pipeline.SchemeZBH1))
	for it := range ref {
		if got[it] != ref[it] {
			t.Errorf("iteration %d: ZB-H1 LM loss %v != fused %v", it, got[it], ref[it])
		}
	}
}

// TestDualPipeDExecutes: the bidirectional split-backward schedule trains
// for real — two weight replicas fed from both pipeline ends, deferred
// weight work on every stage — with per-micro losses identical to 1F1B and
// replica weights converged after the merge + step.
func TestDualPipeDExecutes(t *testing.T) {
	ref := newTrainer(t)
	refStats, err := ref.RunIteration(baseSchedule(t, pipeline.Scheme1F1B))
	if err != nil {
		t.Fatal(err)
	}
	tr := newTrainer(t)
	dp, err := scheme.Build(pipeline.SchemeDualPipeD, scheme.Config{Devices: 4, Micros: 8})
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.RunIteration(dp)
	if err != nil {
		t.Fatal(err)
	}
	for m := range refStats.MicroLosses {
		if st.MicroLosses[m] != refStats.MicroLosses[m] {
			t.Errorf("micro %d: DualPipe-D loss %v != 1F1B loss %v", m, st.MicroLosses[m], refStats.MicroLosses[m])
		}
	}
	pa, pb := ref.Params(), tr.Params()
	for stg := range pa {
		for i := range pa[stg] {
			for j := range pa[stg][i].W.Data {
				diff := math.Abs(float64(pa[stg][i].W.Data[j]) - float64(pb[stg][i].W.Data[j]))
				if diff > 1e-6 {
					t.Fatalf("stage %d param %d elem %d: weights diverge by %v", stg, i, j, diff)
				}
			}
		}
	}
}

// TestSplitBackwardCheckpointed: ZB-H1 survives the full Mario pass pipeline
// (checkpointing inserts the Recompute before the BI half) and still trains
// with the fused-identical loss.
func TestSplitBackwardCheckpointed(t *testing.T) {
	s := baseSchedule(t, pipeline.SchemeZBH1)
	opt, _, err := graph.Optimize(s, graph.Options{Estimator: cost.Uniform(4, 1, 2, 0.25)})
	if err != nil {
		t.Fatal(err)
	}
	ref := newTrainer(t)
	refStats, err := ref.RunIteration(baseSchedule(t, pipeline.Scheme1F1B))
	if err != nil {
		t.Fatal(err)
	}
	tr := newTrainer(t)
	st, err := tr.RunIteration(opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loss != refStats.Loss {
		t.Errorf("checkpointed ZB-H1 loss %v != fused 1F1B %v", st.Loss, refStats.Loss)
	}
}

// TestChimeraLossMatches1F1B: the bidirectional schedule — two weight
// replicas, gradient merge at the AllReduce barrier — produces the same
// per-micro losses as linear 1F1B, and after the optimizer step the two
// replicas hold identical weights.
func TestChimeraLossMatches1F1B(t *testing.T) {
	ref := newTrainer(t)
	refStats, err := ref.RunIteration(baseSchedule(t, pipeline.Scheme1F1B))
	if err != nil {
		t.Fatal(err)
	}
	tr := newTrainer(t)
	chim, err := scheme.Build(pipeline.SchemeChimera, scheme.Config{Devices: 4, Micros: 8})
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.RunIteration(chim)
	if err != nil {
		t.Fatal(err)
	}
	for m := range refStats.MicroLosses {
		if st.MicroLosses[m] != refStats.MicroLosses[m] {
			t.Errorf("micro %d: chimera loss %v != 1F1B loss %v", m, st.MicroLosses[m], refStats.MicroLosses[m])
		}
	}
	// Weight updates match up to float64 accumulation order.
	pa, pb := ref.Params(), tr.Params()
	for stg := range pa {
		for i := range pa[stg] {
			for j := range pa[stg][i].W.Data {
				diff := math.Abs(float64(pa[stg][i].W.Data[j]) - float64(pb[stg][i].W.Data[j]))
				if diff > 1e-6 {
					t.Fatalf("stage %d param %d elem %d: weights diverge by %v", stg, i, j, diff)
				}
			}
		}
	}
}

// TestChimeraCheckpointedRuns: the Mario-optimized Chimera schedule executes
// with identical losses and reduced memory.
func TestChimeraCheckpointedRuns(t *testing.T) {
	chim, err := scheme.Build(pipeline.SchemeChimera, scheme.Config{Devices: 4, Micros: 8})
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := graph.Optimize(chim, graph.Options{Estimator: cost.Uniform(4, 1, 2, 0.25)})
	if err != nil {
		t.Fatal(err)
	}
	base := newTrainer(t)
	baseStats, err := base.RunIteration(chim)
	if err != nil {
		t.Fatal(err)
	}
	tr := newTrainer(t)
	st, err := tr.RunIteration(opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loss != baseStats.Loss {
		t.Errorf("checkpointed chimera loss %v != base %v", st.Loss, baseStats.Loss)
	}
}

// TestInterleaveLossMatches1F1B: the interleaved schedule (two chunks per
// device) trains the same 8-stage model as an 8-device 1F1B pipeline and
// produces identical per-micro losses.
func TestInterleaveLossMatches1F1B(t *testing.T) {
	const stages, micros = 8, 8
	refCfg := config()
	refCfg.Devices = stages
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := scheme.Build(pipeline.Scheme1F1B, scheme.Config{Devices: stages, Micros: micros})
	if err != nil {
		t.Fatal(err)
	}
	refStats, err := ref.RunIteration(linear)
	if err != nil {
		t.Fatal(err)
	}

	ilCfg := config() // 4 devices
	tr, err := New(ilCfg)
	if err != nil {
		t.Fatal(err)
	}
	il, err := scheme.Build(pipeline.SchemeInterleave, scheme.Config{Devices: 4, Micros: micros, Chunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.RunIteration(il)
	if err != nil {
		t.Fatal(err)
	}
	for m := range refStats.MicroLosses {
		if st.MicroLosses[m] != refStats.MicroLosses[m] {
			t.Errorf("micro %d: interleave loss %v != 1F1B loss %v", m, st.MicroLosses[m], refStats.MicroLosses[m])
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

// TestLanguageModelMode: the trainer runs GPT-style next-token training
// through the pipeline — losses are identical across 1F1B, Chimera and the
// Mario-optimized schedule, start near the uniform ln(V) baseline, and fall
// with training.
func TestLanguageModelMode(t *testing.T) {
	lmCfg := config()
	lmCfg.Vocab = 32
	mk := func() *Trainer {
		tr, err := New(lmCfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	var ref []float64
	for _, tc := range []struct {
		name  string
		sched *pipeline.Schedule
	}{
		{"1f1b", baseSchedule(t, pipeline.Scheme1F1B)},
		{"mario", marioSchedule(t)},
		{"chimera", func() *pipeline.Schedule {
			s, err := scheme.Build(pipeline.SchemeChimera, scheme.Config{Devices: 4, Micros: 8})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}()},
	} {
		tr := mk()
		st, err := tr.RunIteration(tc.sched)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		perToken := st.Loss / float64(lmCfg.Micros)
		base := math.Log(float64(lmCfg.Vocab))
		if perToken < base*0.5 || perToken > base*1.5 {
			t.Errorf("%s: per-micro CE loss %v far from uniform baseline %v", tc.name, perToken, base)
		}
		if ref == nil {
			ref = st.MicroLosses
			continue
		}
		for m := range ref {
			if st.MicroLosses[m] != ref[m] {
				t.Errorf("%s: micro %d loss %v differs from reference %v", tc.name, m, st.MicroLosses[m], ref[m])
			}
		}
	}
}

// TestLanguageModelTrains: cross-entropy falls over iterations under the
// Mario schedule (the pipeline LM memorises its fixed synthetic stream).
func TestLanguageModelTrains(t *testing.T) {
	lmCfg := config()
	lmCfg.Vocab = 16
	lmCfg.LR = 5e-2
	tr, err := New(lmCfg)
	if err != nil {
		t.Fatal(err)
	}
	s := marioSchedule(t)
	var first, last float64
	for it := 0; it < 12; it++ {
		st, err := tr.RunIteration(s)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = st.Loss
		}
		last = st.Loss
	}
	if last >= first*0.95 {
		t.Errorf("LM loss did not fall: first %v, last %v", first, last)
	}
	t.Logf("pipeline LM loss %v -> %v over 12 iterations", first, last)
}

// TestStallDetection: a corrupted schedule whose receive can never be
// satisfied trips the watchdog with ErrStalled instead of hanging the
// iteration forever.
func TestStallDetection(t *testing.T) {
	s := baseSchedule(t, pipeline.Scheme1F1B)
	// Move device 0's first RecvGrad to the very front: device 0 blocks on a
	// gradient that transitively needs activations device 0 has not sent — a
	// genuine cyclic wait across real channels.
	list := s.Lists[0]
	for i, in := range list {
		if in.Kind == pipeline.RecvGrad {
			rg := in
			copy(list[1:i+1], list[:i])
			list[0] = rg
			break
		}
	}
	cfg := config()
	cfg.Watchdog = 300 * time.Millisecond
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.RunIteration(s)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

// TestMismatchedDeliveryDetected: swapping two sends on one link is caught
// as a key mismatch by the receiver, not silently mis-trained.
func TestMismatchedDeliveryDetected(t *testing.T) {
	s := baseSchedule(t, pipeline.SchemeGPipe)
	var saIdx []int
	for i, in := range s.Lists[0] {
		if in.Kind == pipeline.SendAct {
			saIdx = append(saIdx, i)
		}
	}
	if len(saIdx) < 2 {
		t.Fatal("need two sends")
	}
	l := s.Lists[0]
	l[saIdx[0]].Micro, l[saIdx[1]].Micro = l[saIdx[1]].Micro, l[saIdx[0]].Micro
	cfg := config()
	cfg.Watchdog = 2 * time.Second
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RunIteration(s); err == nil {
		t.Fatal("mismatched delivery accepted")
	}
}
