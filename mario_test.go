package mario_test

import (
	"math"
	"strings"
	"testing"

	"mario"
)

func TestParseMemory(t *testing.T) {
	cases := map[string]float64{
		"40G":   40 * (1 << 30),
		"40GB":  40 * (1 << 30),
		"512M":  512 * (1 << 20),
		"1T":    1 << 40,
		"2048K": 2048 * (1 << 10),
		"123":   123,
	}
	for in, want := range cases {
		got, err := mario.ParseMemory(in)
		if err != nil || math.Abs(got-want) > 0.5 {
			t.Errorf("ParseMemory(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-4G", "0"} {
		if _, err := mario.ParseMemory(bad); err == nil {
			t.Errorf("ParseMemory(%q) should fail", bad)
		}
	}
}

func TestModelPresets(t *testing.T) {
	m := mario.Model("GPT3-13B")
	if m.Hidden != 3000 || m.Layers != 128 {
		t.Errorf("GPT3-13B preset wrong: %+v", m)
	}
	if len(mario.Models()) != 4 {
		t.Errorf("expected 4 presets, got %d", len(mario.Models()))
	}
	defer func() {
		if recover() == nil {
			t.Error("Model with unknown name should panic")
		}
	}()
	mario.Model("nope")
}

func TestOptimizeAndRunEndToEnd(t *testing.T) {
	plan, err := mario.Optimize(mario.Config{
		PipelineScheme:  "Auto",
		GlobalBatchSize: 16,
		NumDevices:      4,
		MemoryPerDevice: "40G",
		MicroBatchSizes: []int{1, 2},
	}, mario.Model("LLaMA2-3B"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Best.Throughput <= 0 {
		t.Fatalf("best throughput %v", plan.Best.Throughput)
	}
	if len(plan.Trace) == 0 {
		t.Fatal("empty tuning trace")
	}
	rep, err := mario.Run(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SamplesPerSec <= 0 || rep.PeakMemMax <= rep.PeakMemMin {
		if rep.PeakMemMax < rep.PeakMemMin {
			t.Errorf("report inconsistent: %+v", rep)
		}
	}
	// The measured throughput should be within 25% of the estimate (Fig 10
	// territory).
	rel := math.Abs(rep.SamplesPerSec-plan.Best.Throughput) / plan.Best.Throughput
	if rel > 0.25 {
		t.Errorf("measured %v vs estimated %v: relative error %v", rep.SamplesPerSec, plan.Best.Throughput, rel)
	}
	var sb strings.Builder
	if err := mario.Visualize(&sb, plan); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dev0") {
		t.Error("visualization missing device rows")
	}
}

func TestOptimizeForcedScheme(t *testing.T) {
	ckpt := true
	plan, err := mario.Optimize(mario.Config{
		PipelineScheme:  "V",
		GlobalBatchSize: 16,
		NumDevices:      4,
		MemoryPerDevice: "40G",
		MicroBatchSizes: []int{2},
		Checkpoint:      &ckpt,
	}, mario.Model("LLaMA2-3B"))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Best.Ckpt || plan.Best.Scheme.Shape() != "V" {
		t.Errorf("constraints not honoured: %+v", plan.Best)
	}
}

func TestOptimizeValidation(t *testing.T) {
	model := mario.Model("GPT3-1.6B")
	if _, err := mario.Optimize(mario.Config{GlobalBatchSize: 8}, model); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := mario.Optimize(mario.Config{NumDevices: 4, GlobalBatchSize: 8, MemoryPerDevice: "junk"}, model); err == nil {
		t.Error("bad memory spec accepted")
	}
	if _, err := mario.Optimize(mario.Config{NumDevices: 4, GlobalBatchSize: 8, PipelineScheme: "Q"}, model); err == nil {
		t.Error("bad scheme accepted")
	}
	bad := model
	bad.Hidden = 0
	if _, err := mario.Optimize(mario.Config{NumDevices: 4, GlobalBatchSize: 8}, bad); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestBuildScheduleAndCheckpoint(t *testing.T) {
	s, err := mario.BuildSchedule("X", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDevices() != 4 || s.Micros != 8 {
		t.Errorf("schedule shape wrong: %d devices, %d micros", s.NumDevices(), s.Micros)
	}
	opt, err := mario.Checkpoint(s)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Checkpointed {
		t.Error("Checkpoint did not mark the schedule")
	}
	if s.Checkpointed {
		t.Error("Checkpoint mutated its input")
	}
	if _, err := mario.BuildSchedule("nope", 4, 8); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := mario.Checkpoint(nil); err == nil {
		t.Error("nil schedule accepted")
	}
}

func TestRenderers(t *testing.T) {
	s, err := mario.BuildSchedule("1F1B", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	chart, err := mario.Render(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "F") || !strings.Contains(chart, "B") {
		t.Errorf("chart missing glyphs:\n%s", chart)
	}
	var svg strings.Builder
	if err := mario.RenderSVG(&svg, s); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg.String(), "<svg") {
		t.Error("SVG malformed")
	}
	var tr strings.Builder
	if err := mario.RenderChromeTrace(&tr, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), "traceEvents") {
		t.Error("trace malformed")
	}
}

func TestTrainerThroughPublicAPI(t *testing.T) {
	tr, err := mario.NewTrainer(mario.TrainConfig{
		Devices: 2, BlocksPerStage: 1, Dim: 8, SeqLen: 4,
		Micros: 4, BatchPerMicro: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := mario.BuildSchedule("1F1B", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.RunIteration(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loss <= 0 {
		t.Errorf("loss = %v", st.Loss)
	}
}

func TestSaveLoadSchedule(t *testing.T) {
	s, err := mario.BuildSchedule("1F1B", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := mario.Checkpoint(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := mario.SaveSchedule(&buf, opt); err != nil {
		t.Fatal(err)
	}
	got, err := mario.LoadSchedule(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDevices() != 4 || got.Micros != 8 || !got.Checkpointed {
		t.Errorf("round-trip header mismatch: %d devices, %d micros, ckpt=%v",
			got.NumDevices(), got.Micros, got.Checkpointed)
	}
	// The loaded schedule is executable: run it on the miniature trainer
	// and compare against the in-memory original.
	run := func(sched *mario.Schedule) float64 {
		tr, err := mario.NewTrainer(mario.TrainConfig{
			Devices: 4, BlocksPerStage: 1, Dim: 8, SeqLen: 4,
			Micros: 8, BatchPerMicro: 1, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := tr.RunIteration(sched)
		if err != nil {
			t.Fatal(err)
		}
		return st.Loss
	}
	if a, b := run(opt), run(got); a != b {
		t.Errorf("loaded schedule trains differently: %v vs %v", a, b)
	}
	if err := mario.SaveSchedule(&buf, nil); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := mario.LoadSchedule(strings.NewReader("{")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSplitBackwardPublicAPI(t *testing.T) {
	s, err := mario.BuildSchedule("1F1B", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	split, err := mario.SplitBackward(s)
	if err != nil {
		t.Fatal(err)
	}
	chart, err := mario.Render(split)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "b") || !strings.Contains(chart, "w") {
		t.Errorf("split glyphs missing:\n%s", chart)
	}
	if _, err := mario.SplitBackward(nil); err == nil {
		t.Error("nil schedule accepted")
	}
}
