package mario

import (
	"fmt"
	"io"

	"mario/internal/cost"
	"mario/internal/graph"
	"mario/internal/pipeline"
	"mario/internal/scheme"
	"mario/internal/sim"
	"mario/internal/train"
	"mario/internal/viz"
)

// Schedule is the expanded instruction-list IR of one training iteration
// (§4: one ordered list of FW/CFW/BW/RC/SA/RA/SG/RG/AR/OS instructions per
// device).
type Schedule = pipeline.Schedule

// TrainConfig sizes the miniature real-tensor training runtime that stands
// in for the paper's Megatron-DeepSpeed deployment.
type TrainConfig = train.Config

// TrainStats reports the loss and per-device peak live activation bytes of
// one real-tensor training iteration.
type TrainStats = train.Stats

// Trainer executes Mario schedules on a real (miniature) transformer with
// one goroutine per device and channels for p2p tensors; activation
// checkpointing genuinely drops and recomputes tensors.
type Trainer = train.Trainer

// NewTrainer builds and partitions the miniature model.
func NewTrainer(cfg TrainConfig) (*Trainer, error) { return train.New(cfg) }

// TraceIteration runs one real-tensor training iteration with an event
// recorder attached and returns the stats together with the measured
// per-instruction event stream (wall-clock seconds since iteration start,
// live activation bytes as memory). The trainer's own Sink, if any, is
// restored afterwards.
func TraceIteration(tr *Trainer, s *Schedule) (*TrainStats, []Event, error) {
	if tr == nil {
		return nil, nil, fmt.Errorf("mario: nil trainer")
	}
	rec := &Recorder{}
	prev := tr.Sink
	tr.Sink = rec
	defer func() { tr.Sink = prev }()
	st, err := tr.RunIteration(s)
	if err != nil {
		return nil, nil, err
	}
	return st, rec.Events, nil
}

// BuildSchedule expands a named pipeline scheme ("V"/"1F1B", "X"/"Chimera",
// "W"/"Interleave", "GPipe") into a validated instruction-list schedule.
func BuildSchedule(schemeName string, devices, micros int) (*Schedule, error) {
	s, err := pipeline.ParseScheme(schemeName)
	if err != nil {
		return nil, err
	}
	return scheme.Build(s, scheme.Config{Devices: devices, Micros: micros})
}

// Checkpoint applies Mario's four graph-tuner passes (apply-checkpoint,
// overlap-recompute, remove-redundancy, prepose-forward) to a schedule,
// using an idealised uniform cost model (forward 1, backward 2) to guide the
// prepose search. The input is not modified. For cost models derived from a
// real model and hardware, use Optimize instead.
func Checkpoint(s *Schedule) (*Schedule, error) {
	if s == nil {
		return nil, fmt.Errorf("mario: nil schedule")
	}
	e := cost.Uniform(s.NumStages(), 1, 2, 0.25)
	opt, _, err := graph.Optimize(s, graph.Options{Estimator: e})
	return opt, err
}

// SplitBackward applies the ZB-H1-style extension (the paper's §8 future
// work): each backward is split into its input-gradient half, which
// unblocks the upstream stage early, and its weight-gradient half, which is
// sunk into later bubbles when that improves the simulated makespan. It
// composes with Checkpoint. Schedules containing split backwards run on the
// simulator and the cluster emulator but not on the miniature trainer.
func SplitBackward(s *Schedule) (*Schedule, error) {
	if s == nil {
		return nil, fmt.Errorf("mario: nil schedule")
	}
	e := cost.Uniform(s.NumStages(), 1, 2, 0.25)
	opt, _, err := graph.SplitBackward(s, graph.Options{Estimator: e})
	return opt, err
}

// Render simulates the schedule under the idealised uniform cost model
// (forward 1, backward 2, free communication) and returns the timeline as
// an ASCII Gantt chart — the Fig. 5 visualisation for arbitrary schedules.
func Render(s *Schedule) (string, error) {
	r, err := simulateUniform(s)
	if err != nil {
		return "", err
	}
	return viz.ASCII(r, 1), nil
}

// RenderSVG writes the schedule's idealised timeline as an SVG document.
func RenderSVG(w io.Writer, s *Schedule) error {
	r, err := simulateUniform(s)
	if err != nil {
		return err
	}
	return viz.SVG(w, r)
}

// RenderChromeTrace writes the schedule's idealised timeline in the Chrome
// trace-event JSON format (open with chrome://tracing or Perfetto).
func RenderChromeTrace(w io.Writer, s *Schedule) error {
	r, err := simulateUniform(s)
	if err != nil {
		return err
	}
	return viz.ChromeTrace(w, r)
}

func simulateUniform(s *Schedule) (*sim.Result, error) {
	if s == nil {
		return nil, fmt.Errorf("mario: nil schedule")
	}
	return sim.Simulate(s, cost.Uniform(s.NumStages(), 1, 2, 0.25), sim.Options{})
}
