package mario_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"mario"
)

func smallPlan(t *testing.T) *mario.Plan {
	t.Helper()
	plan, err := mario.Optimize(mario.Config{
		PipelineScheme:  "Auto",
		GlobalBatchSize: 16,
		NumDevices:      4,
		MemoryPerDevice: "40G",
		MicroBatchSizes: []int{1, 2},
	}, mario.Model("LLaMA2-3B"))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// Marshal → Unmarshal → Marshal must be byte-identical: the planning
// service's cache serves stored bytes, and a remote client that re-saves a
// plan must produce the same artifact.
func TestPlanJSONRoundTrip(t *testing.T) {
	plan := smallPlan(t)
	first, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := mario.LoadPlan(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-marshal differs: %d vs %d bytes", len(first), len(second))
	}
	if !reflect.DeepEqual(plan.SearchStats, decoded.SearchStats) {
		t.Errorf("search stats changed: %+v vs %+v", plan.SearchStats, decoded.SearchStats)
	}
	if decoded.Best.Label() != plan.Best.Label() || decoded.Best.Throughput != plan.Best.Throughput {
		t.Errorf("best changed: %s (%v) vs %s (%v)",
			decoded.Best.Label(), decoded.Best.Throughput, plan.Best.Label(), plan.Best.Throughput)
	}
	if len(decoded.Trace) != len(plan.Trace) {
		t.Fatalf("trace length changed: %d vs %d", len(decoded.Trace), len(plan.Trace))
	}
	for i := range plan.Trace {
		if decoded.Trace[i].Label() != plan.Trace[i].Label() ||
			decoded.Trace[i].Throughput != plan.Trace[i].Throughput {
			t.Errorf("trace[%d] changed: %s vs %s", i, decoded.Trace[i].Label(), plan.Trace[i].Label())
		}
	}
}

// A decoded plan must be fully functional: Run executes it on the emulated
// cluster with results identical to running the original, and Visualize and
// Drift keep working (the profiler was reconstructed).
func TestPlanJSONDecodedPlanRuns(t *testing.T) {
	plan := smallPlan(t)
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := mario.LoadPlan(data)
	if err != nil {
		t.Fatal(err)
	}

	want, err := mario.RunWithOptions(plan, 2, mario.RunOptions{CollectEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mario.RunWithOptions(decoded, 2, mario.RunOptions{CollectEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want.SamplesPerSec-got.SamplesPerSec) > 1e-9*math.Abs(want.SamplesPerSec) {
		t.Errorf("decoded plan throughput %v != original %v", got.SamplesPerSec, want.SamplesPerSec)
	}
	if !reflect.DeepEqual(want.PeakMem, got.PeakMem) {
		t.Errorf("decoded plan peak memory %v != original %v", got.PeakMem, want.PeakMem)
	}

	if _, err := mario.Drift(decoded, got); err != nil {
		t.Errorf("drift on decoded plan: %v", err)
	}
	var buf bytes.Buffer
	if err := mario.Visualize(&buf, decoded); err != nil {
		t.Errorf("visualize on decoded plan: %v", err)
	}
}

// A version-1 plan (written before the partitioning/placement fields
// existed) must still decode: an axis-free version-2 body is byte-identical
// to a version-1 body apart from the version field itself, so rewriting the
// version yields a faithful legacy artifact.
func TestPlanJSONLegacyV1Decode(t *testing.T) {
	plan := smallPlan(t)
	good, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Best.Place != nil || plan.Best.PlaceMode != "" {
		t.Fatal("homogeneous plan unexpectedly carries a placement assignment")
	}
	if bytes.Contains(good, []byte(`"Place"`)) || bytes.Contains(good, []byte(`"PlaceMode"`)) {
		t.Fatal("axis-free plan JSON must omit the placement fields")
	}
	legacy := bytes.Replace(good, []byte(`"version":2`), []byte(`"version":1`), 1)
	if bytes.Equal(legacy, good) {
		t.Fatal("version field not found in plan JSON")
	}
	decoded, err := mario.LoadPlan(legacy)
	if err != nil {
		t.Fatalf("legacy v1 plan rejected: %v", err)
	}
	if decoded.Best.Label() != plan.Best.Label() || decoded.Best.Throughput != plan.Best.Throughput {
		t.Errorf("legacy decode changed best: %s (%v) vs %s (%v)",
			decoded.Best.Label(), decoded.Best.Throughput, plan.Best.Label(), plan.Best.Throughput)
	}
	// Re-saving a legacy plan upgrades it to the current version.
	resaved, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved, good) {
		t.Error("re-saved legacy plan differs from the current-version encoding")
	}
}

// A heterogeneous plan's partitioning/placement assignment must survive the
// round trip byte-identically, and the decoded plan must Run on the same
// speed-factored machine.
func TestPlanJSONHeteroRoundTrip(t *testing.T) {
	plan, err := mario.Optimize(mario.Config{
		PipelineScheme:  "1F1B",
		GlobalBatchSize: 16,
		NumDevices:      4,
		MemoryPerDevice: "40G",
		MicroBatchSizes: []int{2},
		DeviceSpeeds:    []float64{1, 1, 0.8, 1},
	}, mario.Model("LLaMA2-3B"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Best.Place == nil {
		t.Fatal("heterogeneous plan carries no placement assignment")
	}
	first, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := mario.LoadPlan(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-marshal differs: %d vs %d bytes", len(first), len(second))
	}
	if decoded.Best.Place == nil || decoded.Best.Place.Key() != plan.Best.Place.Key() {
		t.Errorf("assignment changed across round trip: %q vs %q",
			decoded.Best.Place.Key(), plan.Best.Place.Key())
	}
	want, err := mario.Run(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mario.Run(decoded, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want.SamplesPerSec != got.SamplesPerSec {
		t.Errorf("decoded hetero plan throughput %v != original %v", got.SamplesPerSec, want.SamplesPerSec)
	}
}

// Corrupted or incompatible payloads must be rejected, not half-decoded.
func TestPlanJSONRejectsBadInput(t *testing.T) {
	plan := smallPlan(t)
	good, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"not json":      []byte("{nope"),
		"empty object":  []byte("{}"),
		"wrong version": bytes.Replace(good, []byte(`"version":2`), []byte(`"version":99`), 1),
		"bad schedule":  bytes.Replace(good, []byte(`"k":"BW"`), []byte(`"k":"??"`), 1),
	}
	for name, data := range cases {
		if _, err := mario.LoadPlan(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
